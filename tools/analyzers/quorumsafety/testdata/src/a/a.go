// Package a exercises the quorumsafety analyzer: raw threshold arithmetic,
// comparison direction against quorum-derived values (direct and through
// copies), and ±1 threshold adjustments.
package a

import "rbft/tools/analyzers/quorumsafety/testdata/src/types"

// rawArithmetic spells out every forbidden threshold shape.
func rawArithmetic(f int, cfg types.Config) {
	_ = 2*f + 1     // want `raw quorum arithmetic 2\*f\+1; use types\.Quorum`
	_ = 3*f + 1     // want `raw quorum arithmetic 3\*f\+1; use types\.ClusterSize`
	_ = f + 1       // want `raw quorum arithmetic f\+1; use types\.WeakQuorum`
	_ = 2 * f       // want `raw quorum arithmetic 2\*f; use types\.PrepareThreshold`
	_ = 1 + 2*f     // want `raw quorum arithmetic 2\*f\+1; use types\.Quorum`
	_ = 2*cfg.F + 1 // want `raw quorum arithmetic 2\*f\+1; use types\.Quorum`
	_ = cfg.F + 1   // want `raw quorum arithmetic f\+1; use types\.WeakQuorum`
}

// namedHelpers is the approved form: no diagnostics.
func namedHelpers(f int, cfg types.Config) {
	_ = types.Quorum(f)
	_ = types.ClusterSize(f)
	_ = types.WeakQuorum(cfg.F)
	_ = types.PrepareThreshold(f)
	_ = cfg.Quorum()
}

// unrelatedArithmetic must stay silent: the operands are not the fault
// parameter.
func unrelatedArithmetic(seq int, frames []int) int {
	next := seq + 1
	double := 2 * seq
	for i := 0; i < len(frames); i++ {
		next += frames[i] + 1
	}
	return next + double
}

// comparisons: > and <= against quorum-derived values are off-by-one
// hazards; >= and < are the idiom.
func comparisons(count int, cfg types.Config) bool {
	if count > cfg.Quorum() { // want `suspicious > comparison against a quorum-derived value`
		return true
	}
	if count <= cfg.WeakQuorum() { // want `suspicious <= comparison against a quorum-derived value`
		return true
	}
	if count >= cfg.Quorum() { // idiom: silent
		return true
	}
	if count < cfg.WeakQuorum() { // idiom: silent
		return false
	}
	// Instances is not a quorum; range checks against it are idiomatic.
	if count > cfg.Instances() {
		return true
	}
	return false
}

// throughCopies: quorum-derivedness must survive def-use resolution.
func throughCopies(count int, cfg types.Config) bool {
	q := cfg.Quorum()
	threshold := q
	if count > threshold { // want `suspicious > comparison against a quorum-derived value`
		return true
	}
	return count >= threshold // silent
}

// adjustments: ±1 on a named threshold is an unnamed threshold.
func adjustments(cfg types.Config) {
	_ = cfg.Quorum() + 1 // want `threshold adjusted by \+ 1`
	q := types.WeakQuorum(cfg.F)
	_ = q - 1 // want `threshold adjusted by - 1`
	// Multiplying or summing thresholds is not the ±1 smell.
	_ = cfg.Quorum() + cfg.WeakQuorum()
}

// suppressed: a justified strict comparison stays, with a reason.
func suppressed(count int, cfg types.Config) bool {
	//rbft:ignore quorumsafety -- deliberately strict: test fixture
	return count > cfg.Quorum()
}

// partitions: `x % instances` must go through types.PartitionOf — direct
// calls, copies, conversions, and the conventionally named variable all
// count as the instance-count divisor.
func partitions(client uint64, instances int, cfg types.Config) {
	_ = client % uint64(cfg.Instances()) // want `raw partition arithmetic % against the instance count`
	lanes := cfg.Instances()
	_ = int(client) % lanes                        // want `raw partition arithmetic % against the instance count`
	_ = client % uint64(instances)                 // want `raw partition arithmetic % against the instance count`
	_ = types.PartitionOf(client, cfg.Instances()) // approved spelling: silent
}

// readQuorum exercises the speculative read fast path's matcher shape: a
// client accepts a read once matching replies reach the full 2f+1 quorum.
// The threshold must come from types.Quorum — a raw spelling here is exactly
// the audit hole the fast path must not open — and the acceptance comparison
// is `matching >= quorum`, never strict.
func readQuorum(matching, f int, cfg types.Config) bool {
	if matching >= 2*f+1 { // want `raw quorum arithmetic 2\*f\+1; use types\.Quorum`
		return true
	}
	readQuorum := cfg.Quorum()
	if matching > readQuorum { // want `suspicious > comparison against a quorum-derived value`
		return true
	}
	return matching >= readQuorum // approved spelling: silent
}

// unrelatedModulo must stay silent: the divisor is not the lane count.
func unrelatedModulo(seq, cap int) int {
	next := (seq + 1) % cap
	return next % 10
}

// suppressedPartition: a justified raw modulo stays, with a reason.
func suppressedPartition(client uint64, cfg types.Config) uint64 {
	//rbft:ignore quorumsafety -- deliberately raw: test fixture
	return client % uint64(cfg.Instances())
}
