package quorumsafety_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/quorumsafety"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), quorumsafety.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/pbft":     true,
		"rbft/internal/core":     true,
		"rbft/internal/monitor":  true,
		"rbft/internal/client":   true,
		"rbft/internal/baseline": true,
		"rbft/internal/harness":  true,
		"rbft/internal/runtime":  true,
		// internal/types is the one place thresholds are spelled out.
		"rbft/internal/types": false,
		"rbft/cmd/rbft-node":  false,
	} {
		if got := quorumsafety.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
