// Package quorumsafety enforces the named-threshold convention for quorum
// arithmetic (internal/types): the Byzantine thresholds the protocol's
// safety rests on — 2f+1 (Quorum), f+1 (WeakQuorum), 2f (PrepareThreshold),
// 3f+1 (ClusterSize) — may only be spelled out inside internal/types.
// Everywhere else they must come from the named helpers, so a reviewer can
// audit the arithmetic once instead of re-deriving it at every call site.
//
// In scoped packages it reports:
//
//   - raw fault-parameter arithmetic: 2*f+1, 3*f+1, f+1 and 2*f where f is
//     an integer named f/F or a selector ending in .F (the fault-tolerance
//     parameter). Use types.Quorum / types.ClusterSize / types.WeakQuorum /
//     types.PrepareThreshold (or the Config methods) instead;
//
//   - suspicious comparison direction against a quorum-derived value: the
//     protocol idiom is `count >= Quorum()` (threshold reached) and
//     `count < Quorum()` (not yet). `count > Quorum()` silently demands
//     2f+2 matching messages — a liveness off-by-one that only bites when
//     exactly f nodes are faulty — and `count <= Quorum()` accepts one
//     short. Both directions are reported; a genuinely intended strict
//     comparison is suppressed inline with a reason. Quorum-derivedness is
//     resolved through the framework's def-use layer, so
//     `q := cfg.Quorum(); if n > q` is caught, not just the direct call;
//
//   - threshold adjustment by ±1: expressions like Quorum()+1 or q-1 where
//     q is quorum-derived re-derive an unnamed threshold from a named one;
//     if a protocol change needs a new threshold, it gets a name and a
//     comment in internal/types.
//
//   - raw partition arithmetic: `x % instances` where the divisor is the
//     ordering-lane count (an Instances() call, resolved through copies and
//     conversions, or a variable named instances). Multi-primary safety
//     depends on every node computing the same client→lane map, so the map
//     is spelled out exactly once, in types.PartitionOf; a stray modulo
//     that drifts from it (different hash, different divisor) silently
//     splits execution orders between nodes.
package quorumsafety

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the quorumsafety pass.
var Analyzer = &framework.Analyzer{
	Name:  "quorumsafety",
	Doc:   "forbid raw 2f+1/f+1/2f/3f+1 quorum arithmetic outside internal/types and flag suspicious comparisons against quorum-derived values",
	Scope: inScope,
	Run:   run,
}

// scopedPackages are the packages whose quorum logic must go through the
// named helpers. internal/types itself is the one place allowed to spell
// the arithmetic out.
var scopedPackages = []string{
	"rbft/internal/pbft",
	"rbft/internal/core",
	"rbft/internal/monitor",
	"rbft/internal/client",
	"rbft/internal/baseline",
	"rbft/internal/message",
	"rbft/internal/sim",
	"rbft/internal/harness",
	"rbft/internal/runtime",
}

func inScope(pkgPath string) bool {
	for _, p := range scopedPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// thresholdFuncs are the named helpers whose results count as
// "quorum-derived" for the comparison and adjustment checks. Instances
// (numerically f+1) is deliberately absent: it counts ordering lanes, and
// `i >= Instances()` range checks are idiomatic.
var thresholdFuncs = map[string]bool{
	"Quorum":           true,
	"WeakQuorum":       true,
	"PrepareQuorum":    true,
	"PrepareThreshold": true,
	"ClusterSize":      true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	du := framework.NewDefUse(pass.TypesInfo, fd.Body)
	// matched marks binary expressions consumed as part of a larger reported
	// pattern (the 2*f inside 2*f+1), so they are not double-reported.
	matched := make(map[ast.Expr]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || matched[be] {
			return true
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL:
			checkRawArithmetic(pass, be, matched)
			checkAdjustment(pass, du, be)
		case token.GTR, token.LEQ:
			checkComparison(pass, du, be)
		case token.REM:
			checkPartition(pass, du, be)
		}
		return true
	})
}

// ---- raw fault-parameter arithmetic ----

// isFaultParam reports whether e denotes the fault-tolerance parameter: an
// integer-typed identifier named f or F, or a selector ending in .F
// (cfg.F, c.Cluster.F, ...).
func isFaultParam(pass *framework.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	if name != "f" && name != "F" {
		return false
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// intLit extracts a constant integer value from e.
func intLit(pass *framework.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// mulOfFault matches k*f (either operand order) and returns k.
func mulOfFault(pass *framework.Pass, e ast.Expr) (k int64, inner *ast.BinaryExpr, ok bool) {
	be, isBin := ast.Unparen(e).(*ast.BinaryExpr)
	if !isBin || be.Op != token.MUL {
		return 0, nil, false
	}
	if v, isConst := intLit(pass, be.X); isConst && isFaultParam(pass, be.Y) {
		return v, be, true
	}
	if v, isConst := intLit(pass, be.Y); isConst && isFaultParam(pass, be.X) {
		return v, be, true
	}
	return 0, nil, false
}

// checkRawArithmetic reports the four spelled-out threshold shapes.
func checkRawArithmetic(pass *framework.Pass, be *ast.BinaryExpr, matched map[ast.Expr]bool) {
	report := func(raw, helper string) {
		pass.Reportf(be.Pos(), "raw quorum arithmetic %s; use types.%s (internal/types is the only place thresholds are spelled out)", raw, helper)
	}
	switch be.Op {
	case token.ADD:
		// k*f + 1 / 1 + k*f
		for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			lhs, rhs := pair[0], pair[1]
			one, isConst := intLit(pass, rhs)
			if !isConst || one != 1 {
				continue
			}
			if k, inner, ok := mulOfFault(pass, lhs); ok {
				switch k {
				case 2:
					report("2*f+1", "Quorum(f)")
				case 3:
					report("3*f+1", "ClusterSize(f)")
				default:
					report("k*f+1", "a named threshold helper")
				}
				matched[inner] = true
				return
			}
			if isFaultParam(pass, lhs) {
				report("f+1", "WeakQuorum(f)")
				return
			}
		}
	case token.MUL:
		if k, _, ok := mulOfFault(pass, be); ok && k == 2 {
			report("2*f", "PrepareThreshold(f)")
		}
	}
}

// ---- quorum-derived values (def-use) ----

// isThresholdCall matches a call to one of the named helpers: the
// package-level types.Quorum(f) form or the Config method form
// cfg.Quorum().
func isThresholdCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return thresholdFuncs[fun.Name]
	case *ast.SelectorExpr:
		return thresholdFuncs[fun.Sel.Name]
	}
	return false
}

// quorumDerived reports whether e's value may originate from a named
// threshold helper, resolving copies through the def-use layer.
func quorumDerived(du *framework.DefUse, e ast.Expr) bool {
	if isThresholdCall(e) {
		return true
	}
	for _, origin := range du.Origins(e) {
		if isThresholdCall(origin) {
			return true
		}
	}
	return false
}

// checkComparison flags > and <= against a quorum-derived right- or
// left-hand side.
func checkComparison(pass *framework.Pass, du *framework.DefUse, be *ast.BinaryExpr) {
	if !quorumDerived(du, be.Y) && !quorumDerived(du, be.X) {
		return
	}
	var hint string
	if be.Op == token.GTR {
		hint = "`count > quorum` demands one message more than the threshold; the protocol idiom is `count >= quorum`"
	} else {
		hint = "`count <= quorum` accepts one message short of the threshold; the protocol idiom is `count < quorum`"
	}
	pass.Reportf(be.Pos(), "suspicious %s comparison against a quorum-derived value: %s", be.Op, hint)
}

// ---- partition arithmetic ----

// isInstancesCall matches a call whose result is the ordering-lane count:
// types.Config.Instances() (or the fixture's function form), seen through
// any number of type conversions (uint64(cfg.Instances())).
func isInstancesCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "Instances" {
			return true
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Instances" {
			return true
		}
	}
	if len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return isInstancesCall(pass, call.Args[0]) || isInstanceCount(pass, call.Args[0])
		}
	}
	return false
}

// isInstanceCount reports whether e denotes the lane count by name: an
// integer identifier or selector named instances (the conventional name for
// the PartitionOf divisor).
func isInstanceCount(pass *framework.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	if name != "instances" && name != "Instances" {
		return false
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// instancesDerived reports whether e's value may be the ordering-lane count,
// resolving copies through the def-use layer.
func instancesDerived(pass *framework.Pass, du *framework.DefUse, e ast.Expr) bool {
	if isInstancesCall(pass, e) || isInstanceCount(pass, e) {
		return true
	}
	for _, origin := range du.Origins(e) {
		if isInstancesCall(pass, origin) || isInstanceCount(pass, origin) {
			return true
		}
	}
	return false
}

// checkPartition flags `x % instances`: the client→lane partition map must
// come from types.PartitionOf so every node computes the same one.
func checkPartition(pass *framework.Pass, du *framework.DefUse, be *ast.BinaryExpr) {
	if !instancesDerived(pass, du, be.Y) {
		return
	}
	pass.Reportf(be.Pos(), "raw partition arithmetic %% against the instance count; use types.PartitionOf (internal/types is the only place the client-to-lane map is spelled out)")
}

// checkAdjustment flags quorum ± 1 (and 1 + quorum) re-derivations.
func checkAdjustment(pass *framework.Pass, du *framework.DefUse, be *ast.BinaryExpr) {
	if be.Op != token.ADD && be.Op != token.SUB {
		return
	}
	flag := func(valSide, constSide ast.Expr) bool {
		if v, ok := intLit(pass, constSide); !ok || v != 1 {
			return false
		}
		if !quorumDerived(du, valSide) {
			return false
		}
		pass.Reportf(be.Pos(), "threshold adjusted by %s 1: a quorum-derived value plus or minus one is an unnamed threshold; define and document it in internal/types instead", be.Op)
		return true
	}
	if flag(be.X, be.Y) {
		return
	}
	if be.Op == token.ADD {
		flag(be.Y, be.X)
	}
}
