package trustboundary_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/trustboundary"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), trustboundary.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/runtime": true,
		"rbft/internal/core":    true,
		"rbft/internal/pbft":    true,
		"rbft/internal/client":  true,
		"rbft/internal/sim":     true,
		// message owns the boundary, wal's codec decodes raw segments.
		"rbft/internal/message": false,
		"rbft/internal/wal":     false,
		"rbft/cmd/rbft-node":    false,
	} {
		if got := trustboundary.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
