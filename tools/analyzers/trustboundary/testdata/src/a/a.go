// Package a exercises the trustboundary analyzer: decoded-but-unverified
// message data flowing into guarded state, WAL records, and Output, plus
// forged Verified certificates; and the verified idioms that must stay
// silent.
package a

import (
	"rbft/tools/analyzers/trustboundary/testdata/src/core"
	"rbft/tools/analyzers/trustboundary/testdata/src/message"
	"rbft/tools/analyzers/trustboundary/testdata/src/wal"
)

// node mirrors a runtime wrapper: lastSeq is trusted protocol state.
type node struct {
	mu      chan struct{}
	lastSeq uint64 // guarded by mu; highest applied sequence
	scratch uint64 // not guarded: free to take anything
}

// ---- guarded-field sink ----

// applyUnverified decodes and writes straight into guarded state.
func (n *node) applyUnverified(raw []byte) {
	msg, err := message.Decode(raw)
	if err != nil {
		return
	}
	n.lastSeq = msg.Seq // want `unverified message data assigned to guarded field lastSeq`
}

// applyVerified passes the preverifier first: the verified result is clean.
func (n *node) applyVerified(p *message.Preverifier, raw []byte, from int) {
	msg, err := message.Decode(raw)
	if err != nil {
		return
	}
	v, err := p.PreverifyNode(msg, from)
	if err != nil {
		return
	}
	n.lastSeq = v.Msg.Seq // verified: silent
}

// applyParameter takes an already-decoded message from its caller: the
// function boundary is the contract, parameters are clean.
func (n *node) applyParameter(msg *message.Message) {
	n.lastSeq = msg.Seq // silent
}

// scratchIsFree writes unverified data into an unguarded field.
func (n *node) scratchIsFree(raw []byte) {
	msg, _ := message.Decode(raw)
	n.scratch = msg.Seq // unguarded: silent
}

// ---- WAL sinks ----

// logUnverified builds a durable record from a decoded payload.
func logUnverified(l *wal.Log, raw []byte) {
	msg, _ := message.Decode(raw)
	rec := wal.Record{Kind: 1, Payload: msg.Payload} // want `unverified message data in wal\.Record`
	_, _ = l.Append(rec) // want `unverified message data appended to the WAL`
}

// appendUnverifiedCopy launders the taint through a copy before Append.
func appendUnverifiedCopy(l *wal.Log, raw []byte) {
	msg, _ := message.Decode(raw)
	payload := msg.Payload
	rec := makeRecord(payload)
	_, _ = l.Append(rec)
	_, _ = l.Append(wal.Record{Payload: payload}) // want `unverified message data in wal\.Record` `unverified message data appended to the WAL`
}

// makeRecord is a helper; its caller's flow is what gets analyzed.
func makeRecord(payload []byte) wal.Record { return wal.Record{Payload: payload} }

// logVerified goes through the preverifier before the WAL.
func logVerified(l *wal.Log, p *message.Preverifier, raw []byte, from int) {
	msg, _ := message.Decode(raw)
	v, err := p.PreverifyNode(msg, from)
	if err != nil {
		return
	}
	_, _ = l.Append(wal.Record{Kind: 1, Payload: v.Msg.Payload}) // silent
}

// ---- Output sinks ----

// emitUnverified copies decoded bytes into an Output literal.
func emitUnverified(raw []byte) core.Output {
	msg, _ := message.Decode(raw)
	return core.Output{Messages: [][]byte{msg.Payload}} // want `unverified message data in Output`
}

// emitFieldWrite writes a tainted value into an Output field.
func emitFieldWrite(raw []byte) core.Output {
	var out core.Output
	msg, _ := message.Decode(raw)
	out.Commit = msg.Seq // want `unverified message data written into Output field Commit`
	return out
}

// emitClean builds Output from caller-supplied (already verified) input.
func emitClean(v *message.Verified) core.Output {
	return core.Output{Commit: v.Msg.Seq, Messages: [][]byte{v.Msg.Payload}} // silent
}

// ---- forged certificates ----

// forgeVerified hand-constructs the preverifier's certificate.
func forgeVerified(msg *message.Message, from int) *message.Verified {
	return &message.Verified{Msg: msg, From: from} // want `message\.Verified constructed outside the message package`
}

// suppressedForge is an acknowledged exception (a test double).
func suppressedForge(msg *message.Message) *message.Verified {
	//rbft:ignore trustboundary -- fixture: fault-injection double
	return &message.Verified{Msg: msg}
}
