// Package wal is a fixture stand-in for rbft/internal/wal: Record and
// Log.Append are the durability sinks trustboundary watches.
package wal

// Record is one durable log record.
type Record struct {
	Kind    int
	Payload []byte
}

// Log is the write-ahead log.
type Log struct{}

// Append stages records for durability.
func (l *Log) Append(recs ...Record) (uint64, error) { return 0, nil }
