// Package core is a fixture stand-in for rbft/internal/core: Output is
// what a node emits to the cluster, a trust sink for trustboundary.
package core

// Output is the node's emitted effects for one step.
type Output struct {
	Commit   uint64
	Messages [][]byte
}
