// Package message is a fixture stand-in for rbft/internal/message: it
// supplies the trust-boundary vocabulary — Decode (the taint source),
// Verified (the certificate), and a Preverifier (the sanitizer).
package message

// Message is a decoded wire message.
type Message struct {
	Seq     uint64
	Payload []byte
}

// Verified wraps a message that passed preverification.
type Verified struct {
	Msg  *Message
	From int
}

// Decode parses raw bytes into a Message. Its result is unverified.
func Decode(data []byte) (*Message, error) {
	return &Message{Payload: data}, nil
}

// Preverifier checks message authenticity.
type Preverifier struct{}

// PreverifyNode verifies a decoded node message.
func (p *Preverifier) PreverifyNode(msg *Message, from int) (*Verified, error) {
	return &Verified{Msg: msg, From: from}, nil
}
