// Package trustboundary enforces the ingress trust boundary of the
// protocol pipeline (docs/PIPELINE.md): bytes off the wire become a
// message.Message via message.Decode, but a decoded message is *unverified*
// — its signature, MAC, and shape have not been checked — until it has
// passed through message.Preverifier and come back wrapped in a
// message.Verified. Protocol state transitions, WAL records, and emitted
// Output must only ever be computed from verified input; a decoded-but-
// unverified value that reaches any of them is a Byzantine injection point
// (a forged PRE-PREPARE that mutates the log, a fabricated reply that
// settles a client request).
//
// The analyzer taint-tracks, per function body, every value originating
// from a message.Decode call (the framework's flow-insensitive dataflow
// layer resolves copies, field selections, type switches, and conversions)
// and reports when a tainted value reaches one of the trust sinks:
//
//   - assignment into a struct field annotated `// guarded by <mu>` —
//     guarded fields are the protocol state the apply loop trusts;
//
//   - a wal.Record composite literal or an argument to a wal Append method
//     — once a record is durable it will be replayed as truth on recovery;
//
//   - an Output composite literal or a field write into an Output value —
//     Output is what the node tells the rest of the cluster and its
//     clients.
//
// Independent of taint, constructing a message.Verified composite literal
// anywhere outside the message package is reported: Verified is the
// preverifier's certificate, and hand-forging one launders an unverified
// message into the trusted half of the pipeline.
//
// The function boundary is the contract: parameters are treated as clean
// because the caller's body is analyzed separately, so the verify-then-hand-
// off idiom (runtime's verifyLoop passing *message.Verified to the apply
// loop) stays silent, while a function that both decodes and applies is
// exactly the hazard this analyzer exists to catch. Intended exceptions are
// suppressed inline: //rbft:ignore trustboundary -- <reason>.
package trustboundary

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the trustboundary pass.
var Analyzer = &framework.Analyzer{
	Name:  "trustboundary",
	Doc:   "taint-track decoded-but-unverified messages and forbid flows into guarded state, WAL records, or Output before preverification",
	Scope: inScope,
	Run:   run,
}

// scopedPackages sit above the trust boundary: they consume decoded
// messages and own protocol state. internal/message itself is exempt — the
// preverifier is the one place allowed to turn unverified bytes into
// Verified — as is internal/wal, whose record codec legitimately
// reconstructs Records from raw segment bytes during recovery.
var scopedPackages = []string{
	"rbft/internal/runtime",
	"rbft/internal/core",
	"rbft/internal/pbft",
	"rbft/internal/client",
	"rbft/internal/monitor",
	"rbft/internal/sim",
	"rbft/internal/harness",
	"rbft/internal/baseline",
}

func inScope(pkgPath string) bool {
	for _, p := range scopedPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

var guardRE = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *framework.Pass) error {
	guarded := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, guarded, fd)
		}
	}
	return nil
}

// collectGuardedFields returns the field objects of this package annotated
// `// guarded by <mu>` — the same convention lockdiscipline enforces
// locking for; here the fields mark trusted protocol state.
func collectGuardedFields(pass *framework.Pass) map[types.Object]bool {
	guarded := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				if !guardRE.MatchString(text) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = true
					}
				}
			}
			return true
		})
	}
	return guarded
}

// taintConfig wires the framework taint engine to this analyzer's boundary:
// sources are message.Decode calls, sanitizers are the Preverify* entry
// points (ordinary calls never propagate taint, so the sanitizer is belt
// and braces for when a Preverify result is built in the same expression).
func taintConfig(pass *framework.Pass) framework.TaintConfig {
	return framework.TaintConfig{
		Source:    func(call *ast.CallExpr) bool { return isDecodeCall(pass, call) },
		Sanitizer: func(call *ast.CallExpr) bool { return isPreverifyCall(call) },
	}
}

// isDecodeCall matches a call to a package-level function named Decode
// declared in a package whose base name is "message". Resolving through the
// type checker keeps method calls like (*json.Decoder).Decode out.
func isDecodeCall(pass *framework.Pass, call *ast.CallExpr) bool {
	var ident *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		ident = fun
	case *ast.SelectorExpr:
		ident = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[ident].(*types.Func)
	if !ok || fn.Name() != "Decode" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Name() == "message"
}

// isPreverifyCall matches the preverifier entry points by name prefix:
// PreverifyClient, PreverifyNode, and their Frame variants.
func isPreverifyCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "Preverify")
	case *ast.SelectorExpr:
		return strings.HasPrefix(fun.Sel.Name, "Preverify")
	}
	return false
}

// namedFrom reports whether t (through pointers) is a named type with the
// given type name declared in a package with the given base name.
func namedFrom(t types.Type, typeName, pkgName string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

func checkFunc(pass *framework.Pass, guarded map[types.Object]bool, fd *ast.FuncDecl) {
	du := framework.NewDefUse(pass.TypesInfo, fd.Body)
	taint := framework.NewTaint(du, taintConfig(pass))

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, guarded, taint, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, taint, n)
		case *ast.CallExpr:
			checkAppendCall(pass, taint, n)
		}
		return true
	})
}

// checkAssign reports tainted right-hand sides flowing into guarded fields
// or into fields of an Output value.
func checkAssign(pass *framework.Pass, guarded map[types.Object]bool, taint *framework.Taint, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		if !taint.ExprTainted(rhs) {
			continue
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && guarded[obj] {
			pass.Reportf(as.Pos(), "unverified message data assigned to guarded field %s: values from message.Decode must pass the preverifier before reaching protocol state", sel.Sel.Name)
			continue
		}
		if baseT := pass.TypesInfo.TypeOf(sel.X); namedFrom(baseT, "Output", "core") {
			pass.Reportf(as.Pos(), "unverified message data written into Output field %s: Output must be computed from verified input only", sel.Sel.Name)
		}
	}
}

// checkCompositeLit reports tainted wal.Record and Output literals, and any
// message.Verified literal at all (forging the preverifier's certificate).
func checkCompositeLit(pass *framework.Pass, taint *framework.Taint, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	switch {
	case namedFrom(t, "Verified", "message"):
		pass.Reportf(lit.Pos(), "message.Verified constructed outside the message package: Verified is the preverifier's certificate and must only come from Preverify*")
	case namedFrom(t, "Record", "wal"):
		if litTainted(taint, lit) {
			pass.Reportf(lit.Pos(), "unverified message data in wal.Record: durable records are replayed as truth on recovery and must be built from verified input")
		}
	case namedFrom(t, "Output", "core"):
		if litTainted(taint, lit) {
			pass.Reportf(lit.Pos(), "unverified message data in Output: Output must be computed from verified input only")
		}
	}
}

func litTainted(taint *framework.Taint, lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		if taint.ExprTainted(el) {
			return true
		}
	}
	return false
}

// checkAppendCall reports tainted arguments to an Append method on a wal
// type (Log.Append is the durability sink).
func checkAppendCall(pass *framework.Pass, taint *framework.Taint, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Append" {
		return
	}
	recvT := pass.TypesInfo.TypeOf(sel.X)
	if recvT == nil {
		return
	}
	if ptr, ok := recvT.(*types.Pointer); ok {
		recvT = ptr.Elem()
	}
	named, ok := recvT.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "wal" {
		return
	}
	for _, arg := range call.Args {
		if taint.ExprTainted(arg) {
			pass.Reportf(call.Pos(), "unverified message data appended to the WAL: durable records must be built from verified input")
			return
		}
	}
}
