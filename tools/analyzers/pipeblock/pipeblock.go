// Package pipeblock checks that the pipeline's hot-path functions — those
// annotated //rbft:verifier (the concurrent preverify stage,
// docs/PIPELINE.md), //rbft:egress (per-peer send workers, docs/EGRESS.md),
// //rbft:wal (the fsync/segment-I/O path, docs/DURABILITY.md) and
// //rbft:exec (the wave shards of the parallel execution scheduler,
// docs/EXECUTION.md) — cannot stall on anything but the work they exist to
// do. lockdiscipline already
// keeps these functions away from mutexes and guarded state; pipeblock
// covers the other ways a stage wedges:
//
//   - a channel send outside a select with default: a send on a provably
//     unbuffered channel (def-use resolves the operand to make(chan T) with
//     no or zero capacity) blocks until a receiver is ready, and a bare
//     send on any other channel blocks whenever the buffer is full — either
//     way the stage's stall propagates backward through the pipeline;
//
//   - a select containing a send case but no default (and the degenerate
//     empty select{}): without default the select parks until some case can
//     proceed, which on a send case means until a consumer shows up;
//
//   - calls that exist to block: time.Sleep, sync.WaitGroup.Wait,
//     sync.Cond.Wait;
//
//   - calls into same-package functions that acquire a mutex (directly
//     containing a .Lock()/.RLock() call): the mutex wait happens inside
//     the callee, out of lockdiscipline's lexical sight.
//
// Receive-only selects stay silent: parking on empty ingress (the egress
// worker waiting for its queue, the verifier draining its work channel) is
// a stage's idle state, not a stall. Deliberate blocking — the egress
// worker's WaitDurable on the durability horizon is the canonical case —
// is either invisible to these rules (a cross-package call) or suppressed
// inline: //rbft:ignore pipeblock -- <reason>.
package pipeblock

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the pipeblock pass.
var Analyzer = &framework.Analyzer{
	Name:        "pipeblock",
	Doc:         "forbid potentially-blocking operations (unbuffered sends, default-less send selects, sleeps, lock-taking calls) in //rbft:verifier, //rbft:egress, //rbft:wal and //rbft:exec functions",
	Scope:       inScope,
	Run:         run,
	Annotations: []string{"verifier", "egress", "wal", "exec"},
}

// scopedPackages are the packages that host annotated pipeline stages.
var scopedPackages = []string{
	"rbft/internal/runtime",
	"rbft/internal/wal",
	"rbft/internal/transport",
	"rbft/internal/sim",
	"rbft/internal/exec",
}

func inScope(pkgPath string) bool {
	for _, p := range scopedPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// directives are the hot-path annotations this analyzer patrols.
var directives = []string{"rbft:verifier", "rbft:egress", "rbft:wal", "rbft:exec"}

// stageOf returns the annotation fd carries, or "" when unannotated.
func stageOf(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		for _, d := range directives {
			if strings.HasPrefix(text, d) {
				return d
			}
		}
	}
	return ""
}

func run(pass *framework.Pass) error {
	lockTakers := collectLockTakers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			stage := stageOf(fd)
			if stage == "" {
				continue
			}
			checkBody(pass, lockTakers, fd, stage)
		}
	}
	return nil
}

// collectLockTakers returns the package's functions whose bodies acquire a
// mutex (contain a .Lock() or .RLock() call). A hot-path function calling
// one of them waits for the lock inside the callee, where lockdiscipline's
// lexical check cannot see it.
func collectLockTakers(pass *framework.Pass) map[*types.Func]bool {
	takers := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			acquires := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						acquires = true
					}
				}
				return !acquires
			})
			if !acquires {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				takers[fn] = true
			}
		}
	}
	return takers
}

func checkBody(pass *framework.Pass, lockTakers map[*types.Func]bool, fd *ast.FuncDecl, stage string) {
	du := framework.NewDefUse(pass.TypesInfo, fd.Body)

	// selectComms collects send statements that are a select case's comm:
	// the select rule owns those, the bare-send rule must skip them.
	selectComms := make(map[ast.Stmt]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				selectComms[cc.Comm] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if selectComms[n] {
				return true
			}
			if provablyUnbuffered(pass, du, n.Chan) {
				pass.Reportf(n.Pos(), "send on unbuffered channel in %s function: the send parks until a receiver is ready; hand off through a buffered channel or a select with default", stage)
			} else {
				pass.Reportf(n.Pos(), "bare channel send in %s function: the send blocks whenever the buffer is full; use a select with default (drop/fallback) on the hot path", stage)
			}
		case *ast.SelectStmt:
			checkSelect(pass, n, stage)
		case *ast.CallExpr:
			checkCall(pass, lockTakers, n, stage)
		}
		return true
	})
}

// provablyUnbuffered resolves ch through the def-use layer and reports
// whether every resolution path ends in make(chan T) with no or zero
// capacity.
func provablyUnbuffered(pass *framework.Pass, du *framework.DefUse, ch ast.Expr) bool {
	origins := du.Origins(ch)
	if len(origins) == 0 {
		return false
	}
	for _, origin := range origins {
		call, ok := ast.Unparen(origin).(*ast.CallExpr)
		if !ok {
			return false
		}
		ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || ident.Name != "make" {
			return false
		}
		if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin {
			return false
		}
		if len(call.Args) >= 2 {
			tv, ok := pass.TypesInfo.Types[call.Args[1]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return false
			}
			if c, exact := constant.Int64Val(tv.Value); !exact || c != 0 {
				return false
			}
		}
	}
	return true
}

// checkSelect flags the select shapes that park a hot-path goroutine on a
// consumer: empty select{} and a send case without a default escape hatch.
func checkSelect(pass *framework.Pass, sel *ast.SelectStmt, stage string) {
	if len(sel.Body.List) == 0 {
		pass.Reportf(sel.Pos(), "empty select in %s function blocks forever", stage)
		return
	}
	hasDefault, hasSend := false, false
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if _, ok := cc.Comm.(*ast.SendStmt); ok {
			hasSend = true
		}
	}
	if hasSend && !hasDefault {
		pass.Reportf(sel.Pos(), "select with a send case and no default in %s function: the select parks until a consumer is ready; add a default (drop/fallback) on the hot path", stage)
	}
}

// checkCall flags the calls that exist to block, and same-package calls
// into lock-taking functions.
func checkCall(pass *framework.Pass, lockTakers map[*types.Func]bool, call *ast.CallExpr, stage string) {
	var ident *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		ident = fun
	case *ast.SelectorExpr:
		ident = fun.Sel
		if blockingStdCall(pass, fun) {
			pass.Reportf(call.Pos(), "%s in %s function: a pipeline stage must not block on time or goroutine rendezvous", callName(fun), stage)
			return
		}
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[ident].(*types.Func)
	if !ok {
		return
	}
	if lockTakers[fn] {
		pass.Reportf(call.Pos(), "call to %s in %s function: the callee acquires a mutex, so the lock wait happens on the hot path out of lockdiscipline's sight", fn.Name(), stage)
	}
}

// blockingStdCall matches time.Sleep and the sync package's Wait methods
// (WaitGroup.Wait, Cond.Wait).
func blockingStdCall(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		return fn.Name() == "Wait"
	}
	return false
}

// callName renders pkg.Func / recv.Method for the diagnostic.
func callName(sel *ast.SelectorExpr) string {
	if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return base.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
