// Package a exercises the pipeblock analyzer: blocking operations inside
// //rbft:verifier, //rbft:egress, //rbft:wal and //rbft:exec annotated
// functions, and the non-blocking idioms (and unannotated functions) that
// stay silent.
package a

import (
	"sync"
	"time"
)

// server is a lock-taking neighbour: calls into locked() from a hot path
// wait on the mutex inside the callee.
type server struct {
	mu sync.Mutex
	n  int
}

func (s *server) locked() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// ---- channel sends ----

//rbft:verifier
func verifyUnbuffered() {
	ch := make(chan int)
	ch <- 1 // want `send on unbuffered channel in rbft:verifier function`
}

//rbft:verifier
func verifyUnknownCapacity(out chan<- int, v int) {
	out <- v // want `bare channel send in rbft:verifier function`
}

//rbft:egress
func egressBufferedStillBare() {
	ch := make(chan int, 8)
	ch <- 1 // want `bare channel send in rbft:egress function`
}

// plainSend is unannotated: sends are its own business.
func plainSend(ch chan int) {
	ch <- 1 // silent
}

// ---- selects ----

//rbft:egress
func egressSendSelectNoDefault(ch chan int, stop chan struct{}) {
	select { // want `select with a send case and no default in rbft:egress function`
	case ch <- 1:
	case <-stop:
	}
}

//rbft:egress
func egressNonBlockingSend(ch chan int) {
	select { // non-blocking handoff: silent
	case ch <- 1:
	default:
	}
}

//rbft:egress
func egressReceiveSelect(q chan int, stop chan struct{}) {
	select { // parking on empty ingress is the idle state: silent
	case <-q:
	case <-stop:
	}
}

//rbft:wal
func walEmptySelect() {
	select {} // want `empty select in rbft:wal function blocks forever`
}

// ---- blocking calls ----

//rbft:wal
func walSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in rbft:wal function`
}

//rbft:verifier
func verifyWait(wg *sync.WaitGroup) {
	wg.Wait() // want `wg\.Wait in rbft:verifier function`
}

//rbft:verifier
func verifyCondWait(c *sync.Cond) {
	c.Wait() // want `c\.Wait in rbft:verifier function`
}

//rbft:verifier
func verifyCallsLockTaker(s *server) {
	s.locked() // want `call to locked in rbft:verifier function`
}

// verifyCallsClean calls a lock-free same-package helper: silent.
//
//rbft:verifier
func verifyCallsClean(s *server) {
	release(s)
}

func release(s *server) { s.n = 0 }

// plainCalls is unannotated: locking and sleeping are fine off the hot path.
func plainCalls(s *server, wg *sync.WaitGroup) {
	s.locked()
	wg.Wait()
	time.Sleep(time.Millisecond)
}

// ---- exec shards ----

// execShardClean is the intended shard shape: a strided loop writing result
// slots, all synchronisation left to the coordinator. Silent.
//
//rbft:exec
func execShardClean(idx []int, shard, stride int, results []int) {
	for p := shard; p < len(idx); p += stride {
		results[idx[p]] = p
	}
}

//rbft:exec
func execShardWaits(wg *sync.WaitGroup) {
	wg.Wait() // want `wg\.Wait in rbft:exec function`
}

//rbft:exec
func execShardSends(ch chan int) {
	ch <- 1 // want `bare channel send in rbft:exec function`
}

//rbft:exec
func execShardCallsLockTaker(s *server) {
	s.locked() // want `call to locked in rbft:exec function`
}

// ---- suppression ----

//rbft:egress
func suppressedHandoff(ch chan int) {
	//rbft:ignore pipeblock -- handoff channel has a dedicated unbounded consumer
	ch <- 1
}
