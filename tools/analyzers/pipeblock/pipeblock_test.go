package pipeblock_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/pipeblock"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), pipeblock.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/runtime":   true,
		"rbft/internal/wal":       true,
		"rbft/internal/transport": true,
		"rbft/internal/sim":       true,
		"rbft/internal/exec":      true,
		// No annotated stages live in the protocol core or the CLIs.
		"rbft/internal/core": false,
		"rbft/cmd/rbft-node": false,
	} {
		if got := pipeblock.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
