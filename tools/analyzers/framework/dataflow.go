package framework

// dataflow.go is the framework's lightweight intraprocedural dataflow layer:
// def-use chains over the typed AST, origin resolution (what expressions a
// value could have come from), and a small taint engine built on both. It is
// deliberately flow-insensitive — a definition anywhere in the function body
// reaches every use — which over-approximates reachability and therefore
// never misses a flow; analyzers that need precision (quorumsafety's
// comparison check, trustboundary's taint tracking) trade a few suppressible
// false positives for zero false negatives on the protocol-safety
// invariants.
//
// Everything here is per-function: the unit of analysis is one *ast.FuncDecl
// body (closures included — a flow through a captured variable inside the
// same body is tracked). Cross-function flows are each analyzer's problem,
// typically solved by contract: e.g. trustboundary treats function
// parameters as clean because the caller's body is analyzed separately.

import (
	"go/ast"
	"go/types"
)

// DefUse holds the def-use chains of one function body: for every local
// object, the expressions whose value it may hold.
type DefUse struct {
	info *types.Info
	// defs maps each object to every expression assigned to it anywhere in
	// the body (flow-insensitive).
	defs map[types.Object][]ast.Expr
}

// NewDefUse builds def-use chains for one function body. body may be any
// node; only assignment forms inside it contribute definitions:
//
//   - x := e and x = e (including n:n multi-assigns)
//   - x, y := f() (each LHS is defined by the call expression)
//   - var x = e value specs
//   - for k, v := range e (k and v are defined by e)
//   - switch v := x.(type) (each clause's implicit object is defined by x)
//   - x <- from "for x := range ch" is a definition by the channel expr
func NewDefUse(info *types.Info, body ast.Node) *DefUse {
	d := &DefUse{info: info, defs: make(map[types.Object][]ast.Expr)}
	if body == nil {
		return d
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// x, y := f() — every LHS holds a part of the call's result.
				for _, lhs := range n.Lhs {
					d.addDef(lhs, n.Rhs[0])
				}
				break
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					d.addDef(lhs, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				for _, name := range n.Names {
					d.addDef(name, n.Values[0])
				}
				break
			}
			for i, name := range n.Names {
				if i < len(n.Values) {
					d.addDef(name, n.Values[i])
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				d.addDef(n.Key, n.X)
			}
			if n.Value != nil {
				d.addDef(n.Value, n.X)
			}
		case *ast.TypeSwitchStmt:
			// switch v := x.(type): each case clause introduces its own
			// implicit object for v, all defined by the asserted expression.
			assign, ok := n.Assign.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				break
			}
			ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr)
			if !ok {
				break
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if obj := d.info.Implicits[cc]; obj != nil {
					d.defs[obj] = append(d.defs[obj], ta.X)
				}
			}
		}
		return true
	})
	return d
}

// addDef records rhs as a definition of lhs when lhs is a plain identifier
// with a resolved object. Assignments through selectors or indexes define
// fields and elements, not local objects; those are sink territory, not
// def-use territory.
func (d *DefUse) addDef(lhs ast.Expr, rhs ast.Expr) {
	ident, ok := lhs.(*ast.Ident)
	if !ok || ident.Name == "_" {
		return
	}
	obj := d.info.Defs[ident]
	if obj == nil {
		obj = d.info.Uses[ident]
	}
	if obj == nil {
		return
	}
	d.defs[obj] = append(d.defs[obj], rhs)
}

// DefsOf returns every expression assigned to obj in the body.
func (d *DefUse) DefsOf(obj types.Object) []ast.Expr { return d.defs[obj] }

// ObjectOf resolves an identifier to its object (use or def).
func (d *DefUse) ObjectOf(ident *ast.Ident) types.Object {
	if obj := d.info.Uses[ident]; obj != nil {
		return obj
	}
	return d.info.Defs[ident]
}

// Origins returns the set of origin expressions a value may stem from:
// identifiers are resolved through their definitions transitively
// (cycle-safe); parens are unwrapped; any other expression is its own
// origin. An identifier with no recorded definition (a parameter, a
// package-level variable) is returned as its own origin so callers can still
// inspect it.
func (d *DefUse) Origins(e ast.Expr) []ast.Expr {
	var out []ast.Expr
	seen := make(map[types.Object]bool)
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.Ident:
			obj := d.ObjectOf(e)
			if obj == nil || seen[obj] {
				return
			}
			seen[obj] = true
			defs := d.defs[obj]
			if len(defs) == 0 {
				out = append(out, e)
				return
			}
			for _, def := range defs {
				walk(def)
			}
		default:
			out = append(out, e)
		}
	}
	walk(e)
	return out
}

// ---- taint ----

// TaintConfig parameterises the taint engine.
type TaintConfig struct {
	// Source reports whether a call's results are tainted at birth.
	Source func(call *ast.CallExpr) bool
	// Sanitizer reports whether a call launders its arguments: the call's
	// results are clean even when its arguments are tainted.
	Sanitizer func(call *ast.CallExpr) bool
}

// Taint is the result of a taint pass: the set of objects that may hold a
// tainted value anywhere in the analyzed body.
type Taint struct {
	du      *DefUse
	cfg     TaintConfig
	tainted map[types.Object]bool
}

// NewTaint runs the engine to a fixpoint over the body's def-use chains:
// an object is tainted when any of its definitions is a tainted expression,
// and expressions propagate taint structurally (selection, indexing,
// dereference, type assertion, slicing, unary/binary composition, composite
// literals, and type conversions). Ordinary calls do NOT propagate taint
// from arguments to results — the callee's body is analyzed on its own — so
// sanitizing by function boundary is the default and Sanitizer only needs
// to name functions whose *results* must stay clean despite being built
// from tainted inputs in the same expression (none today; the hook exists
// for symmetry and tests).
func NewTaint(du *DefUse, cfg TaintConfig) *Taint {
	t := &Taint{du: du, cfg: cfg, tainted: make(map[types.Object]bool)}
	for changed := true; changed; {
		changed = false
		for obj, defs := range du.defs {
			if t.tainted[obj] {
				continue
			}
			for _, def := range defs {
				if t.ExprTainted(def) {
					t.tainted[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return t
}

// ObjTainted reports whether obj may hold a tainted value.
func (t *Taint) ObjTainted(obj types.Object) bool { return t.tainted[obj] }

// ExprTainted reports whether e may evaluate to (or contain) a tainted
// value.
func (t *Taint) ExprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.du.ObjectOf(e)
		return obj != nil && t.tainted[obj]
	case *ast.ParenExpr:
		return t.ExprTainted(e.X)
	case *ast.SelectorExpr:
		// A field of a tainted value is tainted. (A selector whose base is
		// a package name resolves to a clean package-level object.)
		return t.ExprTainted(e.X)
	case *ast.IndexExpr:
		return t.ExprTainted(e.X)
	case *ast.SliceExpr:
		return t.ExprTainted(e.X)
	case *ast.StarExpr:
		return t.ExprTainted(e.X)
	case *ast.TypeAssertExpr:
		return t.ExprTainted(e.X)
	case *ast.UnaryExpr:
		return t.ExprTainted(e.X)
	case *ast.BinaryExpr:
		return t.ExprTainted(e.X) || t.ExprTainted(e.Y)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if t.ExprTainted(kv.Value) {
					return true
				}
				continue
			}
			if t.ExprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if t.cfg.Source != nil && t.cfg.Source(e) {
			return true
		}
		if t.cfg.Sanitizer != nil && t.cfg.Sanitizer(e) {
			return false
		}
		// A type conversion T(x) is the same value under a new name.
		if tv, ok := t.du.info.Types[e.Fun]; ok && tv.IsType() {
			for _, arg := range e.Args {
				if t.ExprTainted(arg) {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}
