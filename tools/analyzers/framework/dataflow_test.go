package framework

import (
	"go/ast"
	"go/types"
	"testing"
)

// loadDefuse loads the dataflow fixture package and returns it with a lookup
// from function name to declaration.
func loadDefuse(t *testing.T) (*Package, map[string]*ast.FuncDecl) {
	t.Helper()
	pkgs, err := Load(TestData(t), "./src/defuse")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	fns := make(map[string]*ast.FuncDecl)
	for _, f := range pkgs[0].Syntax {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fns[fd.Name.Name] = fd
			}
		}
	}
	return pkgs[0], fns
}

// taintCfg marks calls to Source as sources and calls to Sanitize as
// sanitizers, by callee name.
func taintCfg() TaintConfig {
	calleeIs := func(call *ast.CallExpr, name string) bool {
		ident, ok := call.Fun.(*ast.Ident)
		return ok && ident.Name == name
	}
	return TaintConfig{
		Source:    func(c *ast.CallExpr) bool { return calleeIs(c, "Source") },
		Sanitizer: func(c *ast.CallExpr) bool { return calleeIs(c, "Sanitize") },
	}
}

// localObject finds the types.Object of a local variable of fd by name.
func localObject(pkg *Package, fd *ast.FuncDecl, name string) types.Object {
	var found types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if obj := pkg.TypesInfo.Defs[id]; obj != nil {
			found = obj
		}
		return true
	})
	return found
}

func TestTaintPropagation(t *testing.T) {
	pkg, fns := loadDefuse(t)
	fd := fns["Chain"]
	du := NewDefUse(pkg.TypesInfo, fd.Body)
	taint := NewTaint(du, taintCfg())

	want := map[string]bool{
		"a": true,  // direct source result
		"b": true,  // copy of a
		"c": false, // unrelated call
		"d": true,  // arithmetic over b
		"e": false, // sanitized
		"f": true,  // reassignment from d
	}
	for name, wantTainted := range want {
		obj := localObject(pkg, fd, name)
		if obj == nil {
			t.Fatalf("no local %q", name)
		}
		if got := taint.ObjTainted(obj); got != wantTainted {
			t.Errorf("Chain: taint(%s) = %v, want %v", name, got, wantTainted)
		}
	}
}

func TestTaintThroughTypeSwitch(t *testing.T) {
	pkg, fns := loadDefuse(t)
	fd := fns["Assert"]
	du := NewDefUse(pkg.TypesInfo, fd.Body)
	taint := NewTaint(du, taintCfg())

	// Every implicit object of the type switch must carry the source taint.
	found := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		obj := pkg.TypesInfo.Implicits[cc]
		if obj == nil {
			return true
		}
		found++
		if !taint.ObjTainted(obj) {
			t.Errorf("Assert: type-switch binding in clause at %s is not tainted", pkg.Fset.Position(cc.Pos()))
		}
		return true
	})
	if found == 0 {
		t.Fatal("found no type-switch implicit objects")
	}
}

func TestOriginsResolveThroughCopies(t *testing.T) {
	pkg, fns := loadDefuse(t)
	fd := fns["Quorumish"]
	du := NewDefUse(pkg.TypesInfo, fd.Body)

	// Find the comparison `n > threshold` and resolve each side's origins.
	var cmp *ast.BinaryExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op.String() == ">" {
			cmp = be
		}
		return true
	})
	if cmp == nil {
		t.Fatal("no > comparison in Quorumish")
	}

	// threshold -> q -> Source() : the origin must be the call expression.
	origins := du.Origins(cmp.Y)
	if len(origins) != 1 {
		t.Fatalf("Origins(threshold) = %d exprs, want 1", len(origins))
	}
	call, ok := origins[0].(*ast.CallExpr)
	if !ok {
		t.Fatalf("Origins(threshold)[0] is %T, want *ast.CallExpr", origins[0])
	}
	if ident, ok := call.Fun.(*ast.Ident); !ok || ident.Name != "Source" {
		t.Errorf("origin call is %v, want Source()", call.Fun)
	}

	// n -> Clean() on the left side.
	origins = du.Origins(cmp.X)
	if len(origins) != 1 {
		t.Fatalf("Origins(n) = %d exprs, want 1", len(origins))
	}
	if call, ok := origins[0].(*ast.CallExpr); !ok {
		t.Errorf("Origins(n)[0] is %T, want call", origins[0])
	} else if ident, ok := call.Fun.(*ast.Ident); !ok || ident.Name != "Clean" {
		t.Errorf("origin call is %v, want Clean()", call.Fun)
	}
}

func TestDefUseRangeAndDefs(t *testing.T) {
	pkg, fns := loadDefuse(t)
	fd := fns["Loop"]
	du := NewDefUse(pkg.TypesInfo, fd.Body)
	v := localObject(pkg, fd, "v")
	if v == nil {
		t.Fatal("no local v")
	}
	defs := du.DefsOf(v)
	if len(defs) != 1 {
		t.Fatalf("DefsOf(v) = %d defs, want 1 (the range expression)", len(defs))
	}
	if ident, ok := defs[0].(*ast.Ident); !ok || ident.Name != "xs" {
		t.Errorf("def of v is %v, want xs", defs[0])
	}
	// sum has two defs: the literal and the += (compound assignment).
	sum := localObject(pkg, fd, "sum")
	if sum == nil {
		t.Fatal("no local sum")
	}
	if defs := du.DefsOf(sum); len(defs) != 2 {
		t.Errorf("DefsOf(sum) = %d defs, want 2 (init and +=)", len(defs))
	}
}
