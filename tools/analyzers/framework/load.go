package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	comments CommentIndex
}

// NewPackage assembles a Package from externally loaded parts (used by the
// rbft-vet unitchecker mode, where the go command supplies the file lists
// and export data).
func NewPackage(pkgPath, dir string, fset *token.FileSet, syntax []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Match      []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (go list syntax, e.g. "./...") relative to dir,
// parses every matched package's non-test sources, and type-checks them
// against compiled export data of their dependencies. It shells out to
// `go list -deps -export` once; nothing is fetched from the network.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Match,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}

	exportFiles := make(map[string]string)
	var targets []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{
		base: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exportFiles[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiled export data, special-casing
// "unsafe" (which has none).
type exportImporter struct {
	base types.Importer
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
