package framework

import (
	"strings"
	"testing"
)

// TestLoadReportsBuildError: loading a package that fails to type-check must
// return the error (naming the package) rather than panicking — a broken
// tree handed to rbft-vet should fail CI with a diagnosis, not a stack
// trace.
func TestLoadReportsBuildError(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked on a build-error package: %v", r)
		}
	}()
	pkgs, err := Load(TestData(t), "./src/broken")
	if err == nil {
		t.Fatalf("Load of a build-error package succeeded with %d packages, want error", len(pkgs))
	}
	if !strings.Contains(err.Error(), "broken") && !strings.Contains(err.Error(), "undefinedIdentifier") {
		t.Errorf("Load error does not identify the failure: %v", err)
	}
}

// TestLoadRejectsUnknownPattern: a pattern matching nothing must error, not
// return an empty slice that downstream code would read as "all clean".
func TestLoadRejectsUnknownPattern(t *testing.T) {
	if _, err := Load(TestData(t), "./src/does-not-exist"); err == nil {
		t.Fatal("Load of a nonexistent pattern succeeded, want error")
	}
}

// TestLoadHealthyPackage: the happy path yields parsed syntax and full type
// information for a clean fixture package.
func TestLoadHealthyPackage(t *testing.T) {
	pkgs, err := Load(TestData(t), "./src/defuse")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.Syntax) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatalf("Load returned an incomplete package: syntax=%d types=%v", len(p.Syntax), p.Types)
	}
	if p.Types.Scope().Lookup("Chain") == nil {
		t.Error("loaded package is missing the Chain function")
	}
}
