// Package broken deliberately fails to type-check: the framework loader
// regression test asserts that Load surfaces the build error instead of
// panicking or silently returning an empty package list.
package broken

func Oops() int {
	return undefinedIdentifier
}
