// Package annot exercises CheckAnnotations: one typo'd directive among
// valid annotations, suppressions, and prose mentions.
package annot

// Bad carries a typo'd annotation (verifier misspelled): no analyzer will
// ever look for it, which is exactly the bug CheckAnnotations catches.
//
//rbft:verifer
func Bad() {}

// Good carries a real annotation.
//
//rbft:verifier
func Good() {}

// Dispatched uses an annotation with arguments.
//
//rbft:dispatch ignore=Reply
func Dispatched(kind int) {
	switch kind {
	default:
	}
}

// suppressed shows the framework's own directive is always known. A prose
// mention of //rbft:nonsense inside a sentence is not a directive and must
// not be flagged.
func suppressed() int {
	//rbft:ignore lockdiscipline -- fixture: not a real access
	return 0
}
