// Package defuse is a fixture for the framework's dataflow layer tests:
// small functions whose def-use chains, origins and taint flows the tests
// assert programmatically (no // want comments — this package exercises the
// layer, not an analyzer).
package defuse

// Source stands in for a taint source (e.g. message.Decode).
func Source() int { return 1 }

// Clean stands in for an ordinary call.
func Clean() int { return 2 }

// Sanitize stands in for a declared sanitizer.
func Sanitize(x int) int { return x }

// Chain threads a source value through several assignment forms; the taint
// tests assert which locals end up tainted.
func Chain() (int, int, int, int) {
	a := Source()
	b := a        // plain copy: tainted
	c := Clean()  // fresh call: clean
	d := b + 1    // arithmetic on tainted: tainted
	e := Sanitize(b)
	var f int
	f = d
	_ = f
	return b, c, d, e
}

// Loop defines its values through a range statement.
func Loop(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}

// Quorumish mirrors the quorumsafety use case: q's origin must resolve to
// the call expression even through an intermediate copy.
func Quorumish() bool {
	q := Source()
	threshold := q
	n := Clean()
	return n > threshold
}

// Assert mirrors the trustboundary use case: a type switch's implicit
// object carries the switched value's taint into every clause.
func Assert() int {
	v := Source()
	var boxed interface{} = v
	switch w := boxed.(type) {
	case int:
		return w
	default:
		_ = w
	}
	return 0
}
