package framework

import (
	"fmt"
	"sort"
	"strings"
)

// IgnoreAnnotation is the framework's own suppression directive,
// //rbft:ignore, always part of the known set.
const IgnoreAnnotation = "ignore"

// KnownAnnotations returns the union of the analyzers' declared annotations
// plus the framework's ignore directive.
func KnownAnnotations(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{IgnoreAnnotation: true}
	for _, a := range analyzers {
		for _, name := range a.Annotations {
			known[name] = true
		}
	}
	return known
}

// CheckAnnotations scans pkg's comments for //rbft:<name> directives and
// returns a diagnostic for every name not in known. Only directive-position
// comments count: the comment's text must begin exactly with "//rbft:"
// (no space), so prose that merely mentions an annotation is never
// flagged. An annotation no analyzer understands is dead weight at best
// and, at worst, a typo that silently disables the check it meant to
// invoke.
func CheckAnnotations(pkg *Package, known map[string]bool) []Diagnostic {
	var names []string
	for name := range known {
		names = append(names, name)
	}
	sort.Strings(names)
	knownList := strings.Join(names, ", ")

	var diags []Diagnostic
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//rbft:")
				if !ok {
					continue
				}
				name := annotationName(rest)
				if name == "" || !known[name] {
					diags = append(diags, Diagnostic{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("unknown annotation //rbft:%s: no registered analyzer understands it (known: %s)", name, knownList),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// annotationName extracts the directive name: the leading run of
// lower-case letters, digits and underscores.
func annotationName(s string) string {
	for i, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return s[:i]
		}
	}
	return s
}
