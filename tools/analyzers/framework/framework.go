// Package framework is a dependency-free miniature of golang.org/x/tools'
// go/analysis: an Analyzer/Pass API, a package loader built on
// `go list -export` plus the standard library's gc export-data importer,
// diagnostic suppression comments, and (in analysistest.go) a `// want`
// expectation harness for analyzer self-tests.
//
// It exists because this repository vendors nothing: the protocol-invariant
// analyzers under tools/analyzers must build with the Go standard library
// alone.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rbft:ignore suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Scope reports whether the analyzer applies to a package import path
	// when driven by cmd/rbft-vet. Self-tests bypass it.
	Scope func(pkgPath string) bool
	// Run analyzes one package, reporting findings via pass.Reportf.
	Run func(*Pass) error
	// Annotations lists the //rbft:<name> source annotations this analyzer
	// understands (e.g. "dispatch"). cmd/rbft-vet takes the union across
	// registered analyzers — plus the framework's own "ignore" — and rejects
	// any //rbft: annotation outside it, so a typo'd directive fails CI
	// instead of silently disabling its check.
	Annotations []string
}

// Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run executes the analyzer on pkg and returns its diagnostics with
// //rbft:ignore suppressions already applied, sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	diags := filterSuppressed(a.Name, pkg, pass.diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ---- suppression ----

// A diagnostic is suppressed when the same line, or the line immediately
// above it, carries a comment of the form
//
//	//rbft:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// naming the reporting analyzer. The reason is mandatory by convention
// (reviewed, not enforced).
func filterSuppressed(name string, pkg *Package, diags []Diagnostic) []Diagnostic {
	idx := pkg.commentLines()
	var kept []Diagnostic
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		lines := idx[pos.Filename]
		if ignores(lines[pos.Line], name) || ignores(lines[pos.Line-1], name) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func ignores(comment, analyzer string) bool {
	i := strings.Index(comment, "rbft:ignore")
	if i < 0 {
		return false
	}
	rest := strings.TrimSpace(comment[i+len("rbft:ignore"):])
	if j := strings.Index(rest, "--"); j >= 0 {
		rest = rest[:j]
	}
	// First whitespace-delimited token is the analyzer list.
	names := strings.Fields(rest)
	if len(names) == 0 {
		return false
	}
	for _, n := range strings.Split(names[0], ",") {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// CommentIndex maps filename -> line -> concatenated comment text on that
// line. Used for suppression and for analyzer annotations such as
// //rbft:dispatch.
type CommentIndex map[string]map[int]string

// commentLines builds (and caches) the package's comment index.
func (p *Package) commentLines() CommentIndex {
	if p.comments != nil {
		return p.comments
	}
	idx := make(CommentIndex)
	for _, f := range p.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					idx[pos.Filename] = m
				}
				// A comment can span lines (/* */); attribute its text to
				// every line it covers so lookups by line are uniform.
				end := p.Fset.Position(c.End())
				for l := pos.Line; l <= end.Line; l++ {
					m[l] += c.Text
				}
			}
		}
	}
	p.comments = idx
	return idx
}

// CommentOnOrAbove returns the comment text on the line of pos or the line
// immediately above, for annotation lookups.
func (p *Package) CommentOnOrAbove(pos token.Pos) string {
	idx := p.commentLines()
	position := p.Fset.Position(pos)
	lines := idx[position.Filename]
	return lines[position.Line-1] + lines[position.Line]
}
