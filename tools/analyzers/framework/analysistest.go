package framework

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest mimics golang.org/x/tools' analysistest.Run: it loads the packages
// named under testdata/src, runs the analyzer (bypassing its Scope), and
// matches diagnostics against `// want "regexp"` comments on the same line.
// Every diagnostic must be wanted and every want must be matched.
func RunTest(t *testing.T, testdata string, a *Analyzer, pkgNames ...string) {
	t.Helper()
	patterns := make([]string, len(pkgNames))
	for i, p := range pkgNames {
		patterns[i] = "./src/" + p
	}
	pkgs, err := Load(testdata, patterns...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses `// want "re" "re2"` comments. The expectation applies
// to the line the comment starts on.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWantPatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns scans a sequence of Go string literals (interpreted or
// raw) and compiles each as a regexp.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("want", fset.Base(), len(s))
	var firstErr error
	sc.Init(file, []byte(s), func(pos token.Position, msg string) {
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %s", pos, msg)
		}
	}, 0)
	var res []*regexp.Regexp
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || firstErr != nil {
			break
		}
		if tok == token.SEMICOLON {
			continue
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("expected string literal, got %s %q", tok, lit)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return res, nil
}

// TestData returns the caller's testdata directory as an absolute path.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
