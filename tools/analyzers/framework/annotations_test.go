package framework

import (
	"strings"
	"testing"
)

func TestCheckAnnotations(t *testing.T) {
	pkgs, err := Load(TestData(t), "./src/annot")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	known := KnownAnnotations([]*Analyzer{
		{Name: "x", Annotations: []string{"verifier", "egress", "wal"}},
		{Name: "y", Annotations: []string{"dispatch"}},
	})
	diags := CheckAnnotations(pkgs[0], known)
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("diag: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want exactly 1 (the typo)", len(diags))
	}
	if !strings.Contains(diags[0].Message, "//rbft:verifer") {
		t.Errorf("diagnostic %q does not name the typo'd annotation", diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, "dispatch") || !strings.Contains(diags[0].Message, "ignore") {
		t.Errorf("diagnostic %q does not list the known annotations", diags[0].Message)
	}
}

func TestKnownAnnotationsAlwaysIncludesIgnore(t *testing.T) {
	if !KnownAnnotations(nil)[IgnoreAnnotation] {
		t.Fatal("ignore must always be known")
	}
}
