// Package a contains known-bad nondeterminism patterns for the
// simdeterminism analyzer self-test.
package a

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func sleeper() {
	time.Sleep(1)        // want `time\.Sleep reads the wall clock`
	_ = time.After(1)    // want `time\.After reads the wall clock`
	_ = time.NewTimer(1) // want `time\.NewTimer reads the wall clock`
	select {             // want `select with default`
	case <-time.Tick(1): // want `time\.Tick reads the wall clock`
	default:
	}
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	return rand.Intn(10)               // want `global math/rand\.Intn`
}

func spawns() {
	go globalRand() // want `goroutine spawned in simulator-executed code`
}

// good: seeded local generator, virtual now passed in, time arithmetic.
func good(now time.Time, seed int64) time.Time {
	rng := rand.New(rand.NewSource(seed))
	d := time.Duration(rng.Int63n(1000))
	if now.After(time.Unix(0, 0)) {
		return now.Add(d)
	}
	return now
}

// suppressed: justified wall-clock use.
func suppressed() time.Time {
	//rbft:ignore simdeterminism -- self-test of the suppression comment
	return time.Now()
}
