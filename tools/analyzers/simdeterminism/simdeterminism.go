// Package simdeterminism enforces the virtual-time discipline of the
// simulator-executed packages: the discrete-event simulator in internal/sim
// drives the protocol state machines single-threaded in virtual time, and
// the repository's experimental claims (RBFT's ≤3% degradation under attack)
// are only reproducible if those packages never consult the wall clock,
// never draw from a shared randomness source, and never introduce scheduling
// nondeterminism.
//
// In scoped packages it reports:
//   - calls to (or references of) time.Now, time.Since, time.Until,
//     time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker and
//     time.AfterFunc — virtual time is passed in as a time.Time parameter;
//   - package-level math/rand functions (rand.Intn, rand.Shuffle, ...),
//     which draw from the process-global source; a locally seeded
//     *rand.Rand via rand.New(rand.NewSource(seed)) is fine;
//   - go statements — simulator-executed code must stay single-threaded;
//   - select statements with a default clause — polling a channel makes
//     progress depend on goroutine scheduling.
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &framework.Analyzer{
	Name:  "simdeterminism",
	Doc:   "forbid wall-clock, global randomness, goroutines and channel polling in simulator-executed packages",
	Scope: inScope,
	Run:   run,
}

// simPackages are the packages the discrete-event simulator executes
// in-process; everything here must be deterministic under a fixed seed.
var simPackages = []string{
	"rbft/internal/sim",
	"rbft/internal/core",
	"rbft/internal/pbft",
	"rbft/internal/baseline",
	"rbft/internal/monitor",
	"rbft/internal/message",
	"rbft/internal/obs",
	// The experiment harness builds every benchmark and determinism-gated
	// configuration (BENCH_sim.json, the speedup bounds); a wall-clock or
	// global-randomness leak here would silently decalibrate them.
	"rbft/internal/harness",
}

func inScope(pkgPath string) bool {
	for _, p := range simPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// wallClock lists the time package functions that read or wait on the real
// clock (or create timers that do).
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randAllowed lists math/rand package functions that merely construct
// deterministic generators.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in simulator-executed code; the simulator is single-threaded virtual time")
			case *ast.SelectStmt:
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						pass.Reportf(n.Pos(), "select with default in simulator-executed code; channel polling makes progress scheduling-dependent")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkSelector(pass *framework.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // method, e.g. (time.Time).Since does not exist but (time.Time).After does
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulator-executed code must use the virtual `now` passed in", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[fn.Name()] {
			pass.Reportf(sel.Pos(), "global math/rand.%s is shared process state; use a *rand.Rand seeded from the simulation config", fn.Name())
		}
	}
}
