package simdeterminism_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/simdeterminism"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), simdeterminism.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/sim":              true,
		"rbft/internal/core":             true,
		"rbft/internal/message":          true,
		"rbft/internal/harness":          true,
		"rbft/internal/transport/tcpnet": false,
		"rbft/internal/runtime":          false,
		"rbft/cmd/rbft-bench":            false,
	} {
		if got := simdeterminism.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
