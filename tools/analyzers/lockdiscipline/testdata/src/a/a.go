// Package a contains lock-discipline violations for the self-test.
package a

import "sync"

// Registry is a shared table with annotated guarded fields.
type Registry struct {
	mu sync.Mutex
	// guarded by mu
	entries map[string]int
	done    bool // guarded by mu

	hits int // unguarded on purpose: no annotation, never checked
}

// good: lock held around access.
func (r *Registry) Put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[k] = v
	r.done = false
}

// bad: no lock anywhere in the function.
func (r *Registry) Leak(k string) int {
	return r.entries[k] // want `r\.entries is guarded by r\.mu, which this function never locks`
}

// bad: access lexically before the acquisition.
func (r *Registry) Early() int {
	n := len(r.entries) // want `r\.entries is guarded by r\.mu but accessed before the lock is taken`
	r.mu.Lock()
	defer r.mu.Unlock()
	return n + len(r.entries)
}

// good: Locked suffix means the caller holds the mutex.
func (r *Registry) sizeLocked() int {
	return len(r.entries)
}

// good: constructor initialises before publication.
func NewRegistry() *Registry {
	r := &Registry{}
	r.entries = make(map[string]int)
	return r
}

// good: unguarded field needs no lock.
func (r *Registry) Hits() int { return r.hits }

// suppressed: justified lock-free read.
func (r *Registry) Racy() bool {
	//rbft:ignore lockdiscipline -- monotonic flag read, stale value acceptable
	return r.done
}

// good: a verifier worker that only touches unguarded state.
//
//rbft:verifier
func (r *Registry) verifyClean() int {
	return r.hits
}

// bad: a verifier worker reaching into guarded state and taking the lock.
//
//rbft:verifier
func (r *Registry) verifyDirty(k string) int {
	r.mu.Lock()         // want `verifier function verifyDirty calls r\.mu\.Lock; the preverify stage must run lock-free`
	defer r.mu.Unlock() // want `verifier function verifyDirty calls r\.mu\.Unlock; the preverify stage must run lock-free`
	return r.entries[k] // want `verifier function verifyDirty accesses r\.entries \(guarded by r\.mu\); verifier goroutines must not touch guarded state`
}

// bad: holding no lock does not excuse a verifier touching guarded state.
//
//rbft:verifier
func (r *Registry) verifySneaky() bool {
	return r.done // want `verifier function verifySneaky accesses r\.done \(guarded by r\.mu\); verifier goroutines must not touch guarded state`
}

// bad: value receiver copies the mutex.
func (r Registry) Copied() int { // want `value receiver copies a lock`
	return r.hits
}

// bad: value parameter and copy assignment.
func consume(r Registry) { // want `value parameter copies a lock`
	cp := r // want `assignment copies a lock`
	_ = cp
}

// bad: range over a slice of lock-containing values.
func sweep(rs []Registry) {
	for _, r := range rs { // want `range value copies a lock`
		_ = r
	}
}

// good: a WAL I/O helper that works only on its arguments.
//
//rbft:wal
func walWriteClean(data []byte) int {
	return len(data)
}

// bad: WAL I/O running under the log mutex.
//
//rbft:wal
func (r *Registry) walWriteDirty(k string) int {
	r.mu.Lock()         // want `wal I/O function walWriteDirty calls r\.mu\.Lock; fsync and segment I/O must not run under a mutex`
	defer r.mu.Unlock() // want `wal I/O function walWriteDirty calls r\.mu\.Unlock; fsync and segment I/O must not run under a mutex`
	return r.entries[k] // want `wal I/O function walWriteDirty accesses r\.entries \(guarded by r\.mu\); the WAL I/O path must not touch guarded state`
}

// bad: holding no lock does not excuse the I/O path touching guarded state.
//
//rbft:wal
func (r *Registry) walSneaky() bool {
	return r.done // want `wal I/O function walSneaky accesses r\.done \(guarded by r\.mu\); the WAL I/O path must not touch guarded state`
}

// good: an egress worker that drains its queue and touches only its frame.
//
//rbft:egress
func (r *Registry) egressClean() int {
	return r.hits
}

// bad: an egress worker taking the mutex and reaching into guarded state.
//
//rbft:egress
func (r *Registry) egressDirty(k string) int {
	r.mu.Lock()         // want `egress function egressDirty calls r\.mu\.Lock; a send worker that takes a mutex hands a wedged peer's stall back to the apply loop`
	defer r.mu.Unlock() // want `egress function egressDirty calls r\.mu\.Unlock; a send worker that takes a mutex hands a wedged peer's stall back to the apply loop`
	return r.entries[k] // want `egress function egressDirty accesses r\.entries \(guarded by r\.mu\); egress workers must not touch guarded protocol state`
}

// bad: holding no lock does not excuse an egress worker touching guarded
// state.
//
//rbft:egress
func (r *Registry) egressSneaky() bool {
	return r.done // want `egress function egressSneaky accesses r\.done \(guarded by r\.mu\); egress workers must not touch guarded protocol state`
}

// good: a wave shard that only writes its own result slots.
//
//rbft:exec
func execClean(idx []int, shard, stride int, results []int) {
	for p := shard; p < len(idx); p += stride {
		results[idx[p]] = p
	}
}

// bad: a wave shard taking a mutex and reaching into guarded state.
//
//rbft:exec
func (r *Registry) execDirty(k string) int {
	r.mu.Lock()         // want `exec shard function execDirty calls r\.mu\.Lock; a wave shard that takes a mutex serializes the wave it exists to parallelize`
	defer r.mu.Unlock() // want `exec shard function execDirty calls r\.mu\.Unlock; a wave shard that takes a mutex serializes the wave it exists to parallelize`
	return r.entries[k] // want `exec shard function execDirty accesses r\.entries \(guarded by r\.mu\); exec shards must not touch guarded state; the coordinator owns all synchronisation`
}

// bad: holding no lock does not excuse a shard touching guarded state.
//
//rbft:exec
func (r *Registry) execSneaky() bool {
	return r.done // want `exec shard function execSneaky accesses r\.done \(guarded by r\.mu\); exec shards must not touch guarded state; the coordinator owns all synchronisation`
}

// bad: a mutex passed in as a parameter is still a mutex — the bare-ident
// receiver shape must be caught too.
//
//rbft:exec
func execParamLock(mu *sync.Mutex) {
	mu.Lock()   // want `exec shard function execParamLock calls mu\.Lock; a wave shard that takes a mutex serializes the wave it exists to parallelize`
	mu.Unlock() // want `exec shard function execParamLock calls mu\.Unlock; a wave shard that takes a mutex serializes the wave it exists to parallelize`
}
