package lockdiscipline_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/lockdiscipline"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), lockdiscipline.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/runtime":          true,
		"rbft/internal/transport":        true,
		"rbft/internal/transport/tcpnet": true,
		"rbft/internal/transport/memnet": true,
		"rbft/internal/wal":              true,
		"rbft/internal/exec":             true,
		"rbft/internal/core":             false,
		"rbft/internal/sim":              false,
	} {
		if got := lockdiscipline.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
