// Package lockdiscipline enforces the `// guarded by <mu>` convention in the
// concurrent packages (internal/runtime, internal/transport): struct fields
// annotated with a guard comment must only be accessed by functions that
// acquire that mutex (on the same receiver/base expression), and types that
// contain a lock must never be copied by value.
//
// The check is intentionally function-granular rather than a full lockset
// analysis: a function that touches a guarded field must contain at least
// one `base.mu.Lock()` / `base.mu.RLock()` call (directly or deferred) on
// the same base expression lexically before the access. Exemptions:
//
//   - functions whose name ends in "Locked" (caller-holds-lock convention);
//   - accesses through a value the function itself constructed with a
//     composite literal (initialisation before publication);
//   - explicit suppression: //rbft:ignore lockdiscipline -- <reason>.
//
// Functions annotated `//rbft:verifier` (the concurrent preverify stage of
// the ingress pipeline, docs/PIPELINE.md) are held to a stricter rule: they
// may not access any guarded field at all, and may not acquire or release a
// mutex. The verify stage is stateless by contract — a verifier worker that
// reaches for the node lock either reintroduces crypto-under-mutex or races
// the apply loop.
//
// Functions annotated `//rbft:wal` (the fsync and segment-I/O path of the
// write-ahead log, docs/DURABILITY.md) are held to the same lock-free rule:
// no mutex acquisition or release and no guarded-field access. Disk I/O is
// the slowest thing a node does — an fsync that runs under the log (or
// node) mutex stalls every appender for milliseconds and re-serializes the
// pipeline that group commit exists to keep full.
//
// Functions annotated `//rbft:egress` (the per-peer send workers of the
// egress pipeline, docs/EGRESS.md) are held to the same lock-free rule: no
// mutex acquisition or release and no guarded-field access. An egress
// worker blocks on the wire by design — toward a wedged peer, for seconds —
// so a worker that takes the node mutex (or any guarded state) hands that
// peer's stall straight back to the apply loop, undoing the isolation the
// per-peer queues exist to provide.
//
// Functions annotated `//rbft:exec` (the worker shards of the parallel
// execution scheduler, docs/EXECUTION.md) are held to the same lock-free
// rule: no mutex acquisition or release and no guarded-field access. A wave
// shard runs concurrently with its siblings between two barriers owned by
// the coordinator; a shard that reaches for a mutex or node state either
// serializes the wave it exists to parallelize or races the single-threaded
// node it must stay invisible to. Application-internal locking (the KV
// store's shard mutexes) lives behind the cross-package Execute call and is
// the application's own contract, not the shard's.
//
// The copy check flags value parameters, value results, value receivers,
// plain-assignment copies and range-value copies of any type that
// transitively contains a sync.Mutex, sync.RWMutex, sync.WaitGroup,
// sync.Once or sync.Cond.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &framework.Analyzer{
	Name:        "lockdiscipline",
	Doc:         "check `// guarded by mu` field annotations and forbid copying locks by value",
	Scope:       inScope,
	Run:         run,
	Annotations: []string{"verifier", "wal", "egress", "exec"},
}

var concurrentPackages = []string{
	"rbft/internal/runtime",
	"rbft/internal/transport",
	"rbft/internal/wal",
	"rbft/internal/exec",
}

func inScope(pkgPath string) bool {
	for _, p := range concurrentPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

var guardRE = regexp.MustCompile(`guarded by (\w+)`)

// guardedField identifies one annotated field of one struct type.
type guardedField struct {
	mutex string // name of the guarding mutex field
}

func run(pass *framework.Pass) error {
	guards := collectGuards(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopiesInSignature(pass, fd)
			if fd.Body == nil {
				continue
			}
			if isVerifierFunc(fd) {
				checkLockFreeBody(pass, guards, fd, "verifier", "the preverify stage must run lock-free", "verifier goroutines must not touch guarded state")
				continue
			}
			if isWALFunc(fd) {
				checkLockFreeBody(pass, guards, fd, "wal I/O", "fsync and segment I/O must not run under a mutex", "the WAL I/O path must not touch guarded state")
				continue
			}
			if isEgressFunc(fd) {
				checkLockFreeBody(pass, guards, fd, "egress", "a send worker that takes a mutex hands a wedged peer's stall back to the apply loop", "egress workers must not touch guarded protocol state")
				continue
			}
			if isExecFunc(fd) {
				checkLockFreeBody(pass, guards, fd, "exec shard", "a wave shard that takes a mutex serializes the wave it exists to parallelize", "exec shards must not touch guarded state; the coordinator owns all synchronisation")
				continue
			}
			checkFuncBody(pass, guards, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// ---- guarded-field discipline ----

// collectGuards scans struct declarations for `guarded by <mu>` comments and
// returns a map from (struct type, field name) to guard info.
func collectGuards(pass *framework.Pass) map[*types.Named]map[string]guardedField {
	guards := make(map[*types.Named]map[string]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				m := guardRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					fm := guards[named]
					if fm == nil {
						fm = make(map[string]guardedField)
						guards[named] = fm
					}
					fm[name.Name] = guardedField{mutex: m[1]}
				}
			}
			return true
		})
	}
	return guards
}

// access is one read/write of a guarded field within a function body.
type access struct {
	pos   token.Pos
	base  string // textual base expression, e.g. "nr" in nr.node
	owner *types.Named
	field string
	mutex string
}

// checkFuncBody verifies every guarded-field access in one function (and its
// closures — lock acquisitions anywhere in the same body count, matching the
// common pattern of a closure locking for itself).
func checkFuncBody(pass *framework.Pass, guards map[*types.Named]map[string]guardedField, fnName string, body *ast.BlockStmt) {
	if len(guards) == 0 {
		return
	}
	if strings.HasSuffix(fnName, "Locked") {
		return
	}

	// Base expressions the function constructed itself (composite literals):
	// initialisation before the value is shared needs no lock.
	constructed := make(map[string]bool)
	// mutex acquisitions seen, as "base.mutexName" -> earliest position.
	locked := make(map[string]token.Pos)
	var accesses []access

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if isCompositeConstruction(rhs) {
					constructed[types.ExprString(n.Lhs[i])] = true
				}
			}
		case *ast.CallExpr:
			if base, mu, kind := lockCall(n); kind != "" {
				key := base + "." + mu
				if p, ok := locked[key]; !ok || n.Pos() < p {
					locked[key] = n.Pos()
				}
			}
		case *ast.SelectorExpr:
			if a, ok := guardedAccess(pass, guards, n); ok {
				accesses = append(accesses, a)
			}
		}
		return true
	})

	for _, a := range accesses {
		if constructed[a.base] {
			continue
		}
		lockPos, ok := locked[a.base+"."+a.mutex]
		if ok && lockPos < a.pos {
			continue
		}
		if ok {
			pass.Reportf(a.pos, "%s.%s is guarded by %s.%s but accessed before the lock is taken", a.base, a.field, a.base, a.mutex)
			continue
		}
		pass.Reportf(a.pos, "%s.%s is guarded by %s.%s, which this function never locks (suffix the name with Locked if the caller holds it)", a.base, a.field, a.base, a.mutex)
	}
}

// ---- lock-free-stage discipline (//rbft:verifier, //rbft:wal) ----

// hasDirective reports whether fd carries the given //rbft:<name> annotation
// in its doc comment. Directive-style comments are stripped by
// CommentGroup.Text, so the raw comment list is scanned.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), directive) {
			return true
		}
	}
	return false
}

// isVerifierFunc matches the //rbft:verifier annotation: the stateless
// preverify stage of the ingress pipeline.
func isVerifierFunc(fd *ast.FuncDecl) bool { return hasDirective(fd, "rbft:verifier") }

// isWALFunc matches the //rbft:wal annotation: the fsync/segment-I/O path of
// the write-ahead log.
func isWALFunc(fd *ast.FuncDecl) bool { return hasDirective(fd, "rbft:wal") }

// isEgressFunc matches the //rbft:egress annotation: the per-peer send
// workers of the egress pipeline.
func isEgressFunc(fd *ast.FuncDecl) bool { return hasDirective(fd, "rbft:egress") }

// isExecFunc matches the //rbft:exec annotation: the worker shards of the
// parallel execution scheduler.
func isExecFunc(fd *ast.FuncDecl) bool { return hasDirective(fd, "rbft:exec") }

// checkLockFreeBody enforces the lock-free contract shared by the verifier,
// WAL-I/O and egress-worker stages: no access to any guarded field (locked
// or not) and no mutex acquisition or release anywhere in the function.
// There are no exemptions — a verifier that needs node state belongs in the
// apply stage, an fsync that needs the log mutex belongs on the flusher's
// unlocked side, and an egress worker that needs protocol state should have
// been handed it in its queued frame.
func checkLockFreeBody(pass *framework.Pass, guards map[*types.Named]map[string]guardedField, fd *ast.FuncDecl, role, lockMsg, guardMsg string) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, kind := mutexCall(n); kind != "" {
				pass.Reportf(n.Pos(), "%s function %s calls %s.%s; %s", role, name, recv, kind, lockMsg)
			}
		case *ast.SelectorExpr:
			if a, ok := guardedAccess(pass, guards, n); ok {
				pass.Reportf(a.pos, "%s function %s accesses %s.%s (guarded by %s.%s); %s", role, name, a.base, a.field, a.base, a.mutex, guardMsg)
			}
		}
		return true
	})
}

// mutexCall matches {Lock,RLock,Unlock,RUnlock} calls on a field selector
// (base.mu.Lock) or a bare identifier (mu.Lock — a mutex parameter or
// local), returning the receiver expression text and the lock kind.
func mutexCall(call *ast.CallExpr) (recv, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	switch sel.X.(type) {
	case *ast.SelectorExpr, *ast.Ident:
		return types.ExprString(sel.X), sel.Sel.Name
	}
	return "", ""
}

// guardedAccess reports whether sel is base.field where field is guarded in
// base's struct type.
func guardedAccess(pass *framework.Pass, guards map[*types.Named]map[string]guardedField, sel *ast.SelectorExpr) (access, bool) {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return access{}, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return access{}, false
	}
	fm, ok := guards[named]
	if !ok {
		return access{}, false
	}
	gf, ok := fm[sel.Sel.Name]
	if !ok {
		return access{}, false
	}
	return access{
		pos:   sel.Pos(),
		base:  types.ExprString(sel.X),
		owner: named,
		field: sel.Sel.Name,
		mutex: gf.mutex,
	}, true
}

// lockCall matches base.mu.Lock / base.mu.RLock calls and returns the base
// expression text, the mutex field name and the lock kind.
func lockCall(call *ast.CallExpr) (base, mu, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
		return "", "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	return types.ExprString(inner.X), inner.Sel.Name, sel.Sel.Name
}

func isCompositeConstruction(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// ---- lock-by-value discipline ----

// checkCopiesInSignature flags value receivers, parameters and results whose
// types contain a lock, and copy assignments inside the body.
func checkCopiesInSignature(pass *framework.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies a lock: %s contains a sync primitive; use a pointer", what, t)
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil && containsLock(t) {
				report(f.Pos(), "value receiver", t)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil && containsLock(t) {
				report(f.Pos(), "value parameter", t)
			}
		}
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil && containsLock(t) {
				report(f.Pos(), "value result", t)
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || isCompositeConstruction(rhs) {
					continue
				}
				if ident, ok := n.Lhs[i].(*ast.Ident); ok && ident.Name == "_" {
					continue // discarded, nothing is copied into a live value
				}
				if t := pass.TypesInfo.TypeOf(rhs); t != nil && containsLock(t) {
					report(n.Pos(), "assignment", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t) {
				report(n.Value.Pos(), "range value", t)
			}
		}
		return true
	})
}

// containsLock reports whether t transitively contains a sync primitive by
// value.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}
