package maprange_test

import (
	"testing"

	"rbft/tools/analyzers/framework"
	"rbft/tools/analyzers/maprange"
)

func TestAnalyzer(t *testing.T) {
	framework.RunTest(t, framework.TestData(t), maprange.Analyzer, "a")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rbft/internal/pbft":    true,
		"rbft/internal/monitor": true,
		"rbft/internal/crypto":  false,
		"rbft/cmd/rbft-node":    false,
	} {
		if got := maprange.Analyzer.Scope(path); got != want {
			t.Errorf("Scope(%q) = %v, want %v", path, got, want)
		}
	}
}
