// Package a contains map-iteration patterns for the maprange self-test.
package a

import "sort"

type ref struct {
	Client int
	ID     uint64
}

type msg struct{ Ref ref }

// bad: emission order depends on map order.
func emitUnsorted(votes map[int]ref, send func(msg)) {
	for _, r := range votes {
		send(msg{Ref: r}) // want `a call with side effects ordered by the iteration`
	}
}

// bad: building an output slice without sorting it.
func collectUnsorted(votes map[int]ref) []ref {
	var out []ref
	for _, r := range votes {
		out = append(out, r) // want `the order of an emitted/accumulated slice`
	}
	return out
}

// bad: last-writer-wins pick.
func pickAny(votes map[int]ref) ref {
	var chosen ref
	for _, r := range votes {
		chosen = r // want `a last-writer-wins assignment`
	}
	return chosen
}

// bad: returning a loop-dependent value ("first" element of a map).
func first(votes map[int]ref) ref {
	for _, r := range votes {
		return r // want `a return value chosen by iteration order`
	}
	return ref{}
}

// good: collect then sort (the standard idiom).
func collectSorted(votes map[int]ref) []ref {
	var out []ref
	for _, r := range votes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// good: commutative aggregation — counting, threshold checks, set building.
func quorum(votes map[int]ref, q int) bool {
	counts := make(map[ref]int)
	reached := false
	for _, r := range votes {
		counts[r]++
		if counts[r] >= q {
			reached = true
			break
		}
	}
	return reached
}

// good: garbage collection by key predicate.
func gc(votes map[int]ref, floor int) {
	for k := range votes {
		if k < floor {
			delete(votes, k)
		}
	}
}

// good: iterate sorted keys, then order-sensitive work is on a slice.
func sortedKeys(votes map[int]ref, send func(msg)) {
	keys := make([]int, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		send(msg{Ref: votes[k]})
	}
}

// suppressed: justified order-insensitive call.
func suppressed(votes map[int]ref, observe func(ref)) {
	for _, r := range votes {
		//rbft:ignore maprange -- observe is a commutative metric sink
		observe(r)
	}
}
