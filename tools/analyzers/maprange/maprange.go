// Package maprange guards the protocol packages against Go's randomized map
// iteration order leaking into protocol decisions or emitted message order.
// RBFT compares f+1 parallel instances against each other; if the order in
// which a quorum set, per-replica vote map, or per-client table is walked can
// change the messages a node emits (or their order), two runs of the same
// scenario diverge and the paper's cross-instance accounting breaks.
//
// For every `for ... range m` over a map in a scoped package the analyzer
// classifies the loop body. A body is accepted as order-insensitive when it
// only performs commutative aggregation:
//
//   - counters and numeric accumulation (x++, x += v, x |= v, ...);
//   - map/set writes (m2[k] = v) and delete(m, k);
//   - assignments of constants (found = true);
//   - fresh per-iteration declarations (:=), if/else and nested blocks of
//     the same shape, continue/break (early exit of a monotonic scan), and
//     returns of constant values.
//
// One non-commutative pattern is recognised as safe: appending to a slice
// that is subsequently sorted (sort.Slice / sort.Sort / sort.Strings /
// sort.Ints / slices.Sort*) later in the same function — the standard
// "collect then order" idiom. Everything else is reported; fix by iterating
// a sorted key slice, or suppress with
// `//rbft:ignore maprange -- <why order cannot matter>`.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rbft/tools/analyzers/framework"
)

// Analyzer is the maprange pass.
var Analyzer = &framework.Analyzer{
	Name:  "maprange",
	Doc:   "flag map iteration whose order can reach protocol decisions or message emission",
	Scope: inScope,
	Run:   run,
}

var protocolPackages = []string{
	"rbft/internal/sim",
	"rbft/internal/core",
	"rbft/internal/pbft",
	"rbft/internal/baseline",
	"rbft/internal/monitor",
	"rbft/internal/message",
}

func inScope(pkgPath string) bool {
	for _, p := range protocolPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc walks one function body (including its closures) looking for
// range statements over maps.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

// violation is one order-sensitive operation found in a loop body.
type violation struct {
	pos  token.Pos
	what string
	// appendTo is set when the violation is `s = append(s, ...)`; such
	// violations are forgiven if s is sorted later in the function.
	appendTo string
}

func checkMapRange(pass *framework.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	var c classifier
	c.pass = pass
	c.block(rs.Body)
	for _, v := range c.violations {
		if v.appendTo != "" && sortedAfter(pass, fnBody, rs, v.appendTo) {
			continue
		}
		pass.Reportf(v.pos, "map iteration order reaches %s; iterate over sorted keys, sort the result, or annotate //rbft:ignore maprange -- <reason>", v.what)
	}
}

type classifier struct {
	pass       *framework.Pass
	violations []violation
}

func (c *classifier) violate(pos token.Pos, what string) {
	c.violations = append(c.violations, violation{pos: pos, what: what})
}

func (c *classifier) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *classifier) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// x++ / x-- : commutative.
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.ExprStmt:
		c.call(s.X)
	case *ast.DeclStmt:
		// local declaration, fresh per iteration
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			c.violate(s.Pos(), "a goto whose target depends on iteration order")
		}
		// break/continue: early exit of a monotonic scan is accepted (the
		// exit condition must itself be order-insensitive, which holds for
		// threshold/existence checks).
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.block(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.block(s)
	case *ast.ForStmt:
		c.block(s.Body)
	case *ast.RangeStmt:
		// The nested loop gets its own map check if it ranges a map; its
		// body is classified under the same commutativity rules here.
		c.block(s.Body)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				c.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				c.stmt(st)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !c.isConstant(r) {
				c.violate(s.Pos(), "a return value chosen by iteration order")
				return
			}
		}
	default:
		c.violate(s.Pos(), "a statement that may depend on iteration order")
	}
}

func (c *classifier) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// commutative accumulation
		return
	case token.DEFINE:
		// fresh variables each iteration
		return
	}
	// Plain `=`: acceptable when writing a map element (insertion order into
	// a map is unobservable), when assigning a constant, or when appending
	// to a slice that is sorted afterwards (resolved by the caller).
	for i, lhs := range s.Lhs {
		if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
			continue
		}
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if xt := c.pass.TypesInfo.TypeOf(idx.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					continue
				}
			}
			c.violate(s.Pos(), "an indexed write whose slot depends on iteration order")
			continue
		}
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs != nil && c.isConstant(rhs) {
			continue
		}
		if target, ok := appendTarget(lhs, rhs); ok {
			c.violations = append(c.violations, violation{
				pos:      s.Pos(),
				what:     "the order of an emitted/accumulated slice",
				appendTo: target,
			})
			continue
		}
		c.violate(s.Pos(), "a last-writer-wins assignment")
	}
}

// call accepts side-effect-free or commutative builtin calls.
func (c *classifier) call(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		c.violate(e.Pos(), "an expression statement")
		return
	}
	if ident, ok := call.Fun.(*ast.Ident); ok {
		switch ident.Name {
		case "delete", "panic", "print", "println":
			return
		}
	}
	c.violate(e.Pos(), "a call with side effects ordered by the iteration")
}

// isConstant reports whether the expression has a compile-time constant
// value (literal, named const, or composition thereof).
func (c *classifier) isConstant(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if ok && tv.Value != nil {
		return true
	}
	// Composite literals of constants (e.g. struct{}{} set sentinel) and
	// nil are fine too.
	switch e := e.(type) {
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if !c.isConstant(el) {
				return false
			}
		}
		return true
	case *ast.Ident:
		return e.Name == "nil" || e.Name == "true" || e.Name == "false"
	}
	return false
}

// appendTarget matches `s = append(s, ...)` and returns the textual name of
// s.
func appendTarget(lhs ast.Expr, rhs ast.Expr) (string, bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return "", false
	}
	l := types.ExprString(lhs)
	if types.ExprString(call.Args[0]) != l {
		return "", false
	}
	return l, true
}

// sortedAfter reports whether `name` is passed to a recognised sort call
// positioned after the range statement within the enclosing function body.
func sortedAfter(pass *framework.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := pkg.Name == "sort" ||
			(pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(call.Args[0]) == name {
			found = true
		}
		return true
	})
	return found
}
