// kvstore: a replicated key-value service on a 4-node RBFT cluster running
// over real loopback TCP sockets — the paper's deployment transport.
//
//	go run ./examples/kvstore
//
// The example PUTs a few keys, reads them back, deletes one, and shows that
// every node's store converged to the same state.
package main

import (
	"fmt"
	"log"
	"time"

	"rbft/internal/app"
	"rbft/internal/runtime"
	"rbft/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	stores := make(map[types.NodeID]*app.KV)
	cluster, err := runtime.StartLocalCluster(runtime.ClusterOptions{
		F:         1,
		Transport: runtime.TCP,
		NewApp: func(n types.NodeID) app.Application {
			kv := app.NewKV()
			stores[n] = kv
			return kv
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()
	fmt.Println("4-node RBFT cluster over loopback TCP")

	client, err := cluster.NewClient(1)
	if err != nil {
		return err
	}

	ops := []string{
		"PUT name rbft",
		"PUT venue icdcs-2013",
		"PUT robust yes",
		"GET name",
		"DEL robust",
		"GET robust",
		"GET venue",
	}
	for _, op := range ops {
		done, err := client.Invoke([]byte(op), 10*time.Second)
		if err != nil {
			return fmt.Errorf("%q: %w", op, err)
		}
		fmt.Printf("%-22s -> %-12s (%v)\n", op, done.Result, done.Latency.Round(time.Microsecond))
	}

	time.Sleep(100 * time.Millisecond)
	for n, kv := range stores {
		fmt.Printf("node %d holds %d keys\n", n, kv.Len())
	}
	return nil
}
