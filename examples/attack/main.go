// attack: reproduce worst-attack-2 in the deterministic simulator and watch
// RBFT's robustness mechanisms at work.
//
//	go run ./examples/attack
//
// The faulty node hosting the master primary throttles its instance to just
// above the Δ detection threshold, floods the correct nodes, silences its
// backup replicas and drops out of the PROPAGATE phase; colluding clients
// flood the client NICs. The run reports the throughput loss (bounded to a
// few percent, per the paper) and shows what happens when the attacker gets
// greedy and throttles below Δ: an instance change evicts it.
package main

import (
	"fmt"
	"log"
	"time"

	"rbft/internal/core"
	"rbft/internal/monitor"
	"rbft/internal/pbft"
	"rbft/internal/sim"
	"rbft/internal/types"
)

const delta = 0.97

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func baseConfig(offered float64) sim.Config {
	return sim.Config{
		F:            1,
		Cost:         sim.DefaultCostModel(),
		Seed:         7,
		BatchSize:    64,
		BatchTimeout: 2 * time.Millisecond,
		Monitoring: monitor.Config{
			Period:      250 * time.Millisecond,
			Delta:       delta,
			MinRequests: 32,
		},
		Workload: sim.StaticLoad(10, offered/10, 8),
		Warmup:   400 * time.Millisecond,
	}
}

func withAttack(cfg sim.Config, throttleRate float64) sim.Config {
	cfg.NodeBehavior = map[types.NodeID]core.Behavior{
		0: { // node 0 hosts the master primary in view 0
			DropPropagate: true,
			Instance: map[types.InstanceID]pbft.Behavior{
				types.MasterInstance: {ProposeRate: throttleRate},
				1:                    {Silent: true},
			},
		},
	}
	cfg.Floods = []sim.Flood{
		// Below the NIC-closure threshold (64 invalid msgs / 100ms): the
		// attacker must keep its own primary's links open.
		{From: 0, Targets: []types.NodeID{1, 2, 3}, Size: 8192, Rate: 500},
		{FromClients: true, Targets: []types.NodeID{1, 2, 3}, Size: 4096, Rate: 2000},
	}
	return cfg
}

func run() error {
	offered := 20000.0
	dur := 3 * time.Second

	fmt.Println("== fault-free reference ==")
	ff := sim.New(baseConfig(offered)).Run(dur)
	fmt.Printf("throughput %.0f req/s, avg latency %v\n\n", ff.Throughput, ff.AvgLatency.Round(time.Microsecond))

	fmt.Println("== worst-attack-2: smart attacker (throttles to just above Delta) ==")
	smart := sim.New(withAttack(baseConfig(offered), delta*1.01*offered)).Run(dur)
	fmt.Printf("throughput %.0f req/s (%.1f%% of fault-free), instance changes: %d\n",
		smart.Throughput, 100*smart.Throughput/ff.Throughput, len(smart.InstanceChanges))
	fmt.Printf("the damage is bounded: the paper reports at most 3%% loss\n\n")

	fmt.Println("== greedy attacker (throttles far below Delta) ==")
	greedy := sim.New(withAttack(baseConfig(offered), 0.5*offered)).Run(dur)
	fmt.Printf("throughput %.0f req/s (%.1f%% of fault-free), instance changes: %d\n",
		greedy.Throughput, 100*greedy.Throughput/ff.Throughput, len(greedy.InstanceChanges))
	if len(greedy.InstanceChanges) > 0 {
		ic := greedy.InstanceChanges[0]
		fmt.Printf("detected by node %d at %v (reason: %s): every instance view-changed, the\n",
			ic.Node, ic.At.Sub(time.Unix(0, 0)).Round(time.Millisecond), ic.Reason)
		fmt.Println("malicious primary lost the master instance, and throughput recovered.")
	}
	return nil
}
