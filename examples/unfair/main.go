// unfair: reproduce the paper's unfair-primary experiment (figure 12). The
// master primary serves two clients; midway it starts delaying client 0's
// requests. While the extra latency stays under Λ the requests are merely
// slower; the moment one request exceeds Λ, the nodes vote a protocol
// instance change and a fair primary takes over.
//
//	go run ./examples/unfair
package main

import (
	"fmt"
	"log"
	"time"

	"rbft/internal/harness"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	res := harness.Figure12(harness.Options{Seed: 3})
	fmt.Printf("unfair-primary experiment: Lambda = %v, %d requests ordered\n",
		res.Lambda, len(res.Series))
	fmt.Printf("max ordering latency inflicted on the attacked client: %v\n",
		res.MaxAttackedLatency.Round(time.Microsecond))
	if res.InstanceChangeAt >= 0 {
		fmt.Printf("instance change triggered around request %d — the unfair primary was evicted\n",
			res.InstanceChangeAt)
	} else {
		return fmt.Errorf("expected an instance change, saw none")
	}

	// Print the latency timeline, bucketed, per client.
	fmt.Println("\nordering latency (ms) by request index:")
	buckets := 24
	step := len(res.Series) / buckets
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Series); i += step {
		rec := res.Series[i]
		bar := int(rec.Latency / (100 * time.Microsecond))
		if bar > 40 {
			bar = 40
		}
		marker := ""
		if rec.Latency > res.Lambda {
			marker = "  <-- exceeds Lambda: instance change"
		}
		fmt.Printf("  #%4d client %d %8.3f %s%s\n", i, rec.Client,
			float64(rec.Latency)/1e6, bars(bar), marker)
	}
	return nil
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
