// Quickstart: boot a 4-node RBFT cluster (f=1) inside this process, attach
// a client, and execute a handful of requests against the replicated
// counter application.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rbft/internal/app"
	"rbft/internal/runtime"
	"rbft/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One replicated application instance per node; RBFT keeps them in sync.
	counters := make(map[types.NodeID]*app.Counter)
	cluster, err := runtime.StartLocalCluster(runtime.ClusterOptions{
		F: 1,
		NewApp: func(n types.NodeID) app.Application {
			c := app.NewCounter()
			counters[n] = c
			return c
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()
	fmt.Printf("started %d-node RBFT cluster (f=%d, %d protocol instances per node)\n",
		cluster.Cluster.N, cluster.Cluster.F, cluster.Cluster.Instances())

	client, err := cluster.NewClient(1)
	if err != nil {
		return err
	}

	for i := 0; i < 5; i++ {
		op := []byte{0, 0, 0, 0, 0, 0, 0, byte(i + 1)} // add i+1
		done, err := client.Invoke(op, 10*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("request %d: result=%x latency=%v (accepted after f+1 matching replies)\n",
			done.ID, done.Result, done.Latency.Round(time.Microsecond))
	}

	// Every node executed the same totally ordered sequence.
	time.Sleep(100 * time.Millisecond) // let the slowest node catch up
	for n, c := range counters {
		fmt.Printf("node %d: counter=%d fingerprint=%x\n", n, c.Total(1), c.Fingerprint())
	}
	return nil
}
