module rbft

go 1.22
