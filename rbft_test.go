package rbft_test

import (
	"testing"
	"time"

	"rbft"
)

// TestPublicFacade exercises the library exactly as the README shows it:
// boot a cluster through the root package, run requests, observe agreement.
func TestPublicFacade(t *testing.T) {
	counters := make(map[rbft.NodeID]interface{ Total(rbft.ClientID) uint64 })
	cluster, err := rbft.StartLocalCluster(rbft.ClusterOptions{
		F: 1,
		NewApp: func(n rbft.NodeID) rbft.Application {
			c := rbft.NewCounter()
			counters[n] = c
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	if cluster.Cluster.N != 4 || cluster.Cluster.Instances() != 2 {
		t.Fatalf("unexpected cluster shape: %+v", cluster.Cluster)
	}

	client, err := cluster.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	var last rbft.Completed
	for i := 0; i < 5; i++ {
		done, err := client.Invoke(nil, 10*time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		last = done
	}
	if last.ID != 5 {
		t.Fatalf("last completed id = %d, want 5", last.ID)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		agreed := true
		for _, c := range counters {
			if c.Total(1) != 5 {
				agreed = false
			}
		}
		if agreed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes did not converge to 5 executions")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPublicKVApp drives the KV application through the facade over TCP.
func TestPublicKVApp(t *testing.T) {
	cluster, err := rbft.StartLocalCluster(rbft.ClusterOptions{
		F:         1,
		Transport: rbft.TCP,
		NewApp:    func(rbft.NodeID) rbft.Application { return rbft.NewKV() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	client, err := cluster.NewClient(2)
	if err != nil {
		t.Fatal(err)
	}
	put, err := client.Invoke([]byte("PUT k v"), 10*time.Second)
	if err != nil || string(put.Result) != "OK" {
		t.Fatalf("PUT: %q, %v", put.Result, err)
	}
	get, err := client.Invoke([]byte("GET k"), 10*time.Second)
	if err != nil || string(get.Result) != "v" {
		t.Fatalf("GET: %q, %v", get.Result, err)
	}
}

func TestNewConfig(t *testing.T) {
	cfg := rbft.NewConfig(2)
	if cfg.N != 7 || cfg.Quorum() != 5 {
		t.Fatalf("NewConfig(2) = %+v", cfg)
	}
}
